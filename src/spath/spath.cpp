#include "spath/spath.hpp"

#include <algorithm>
#include <chrono>
#include <deque>

#include "match/candidate_index.hpp"
#include "match/intersect.hpp"
#include "match/scratch.hpp"

namespace psi {

std::vector<std::vector<SPathMatcher::NsEntry>> BuildDistanceSignatures(
    const Graph& g, uint32_t radius) {
  radius = std::min(radius, SPathMatcher::kMaxRadius);
  const uint32_t n = g.num_vertices();
  std::vector<std::vector<SPathMatcher::NsEntry>> out(n);

  // Epoch-stamped scratch so per-vertex BFS needs no O(n) clears.
  std::vector<uint32_t> seen_epoch(n, 0);
  std::vector<VertexId> frontier, next;
  const LabelId universe = g.LabelUniverseUpperBound();
  // counts[label][d-1] for the current BFS; `touched` lists dirty labels.
  std::vector<std::array<uint32_t, SPathMatcher::kMaxRadius>> counts(
      universe);
  std::vector<LabelId> touched;

  for (VertexId src = 0; src < n; ++src) {
    const uint32_t epoch = src + 1;
    seen_epoch[src] = epoch;
    frontier.assign(1, src);
    for (uint32_t d = 1; d <= radius && !frontier.empty(); ++d) {
      next.clear();
      for (VertexId v : frontier) {
        for (VertexId w : g.neighbors(v)) {
          if (seen_epoch[w] == epoch) continue;
          seen_epoch[w] = epoch;
          next.push_back(w);
          const LabelId l = g.label(w);
          if (counts[l][0] == 0 && counts[l][1] == 0 && counts[l][2] == 0 &&
              counts[l][3] == 0) {
            touched.push_back(l);
          }
          ++counts[l][d - 1];
        }
      }
      frontier.swap(next);
    }
    auto& sig = out[src];
    sig.reserve(touched.size());
    std::sort(touched.begin(), touched.end());
    for (LabelId l : touched) {
      SPathMatcher::NsEntry e;
      e.label = l;
      uint32_t acc = 0;
      for (uint32_t d = 0; d < SPathMatcher::kMaxRadius; ++d) {
        acc += counts[l][d];
        e.cum[d] = acc;
        counts[l][d] = 0;
      }
      sig.push_back(e);
    }
    touched.clear();
  }
  return out;
}

namespace {

using NsEntry = SPathMatcher::NsEntry;

// Dominance test: every (label, cumulative count) requirement of the query
// vertex must be covered by the data vertex at the same distance bound.
bool SignatureDominates(const std::vector<NsEntry>& query_sig,
                        const std::vector<NsEntry>& data_sig) {
  size_t j = 0;
  for (const NsEntry& qe : query_sig) {
    while (j < data_sig.size() && data_sig[j].label < qe.label) ++j;
    if (j == data_sig.size() || data_sig[j].label != qe.label) return false;
    for (uint32_t d = 0; d < SPathMatcher::kMaxRadius; ++d) {
      if (qe.cum[d] > data_sig[j].cum[d]) return false;
    }
  }
  return true;
}

// Backtracking join over the path-cover order. Like GraphQL, all
// O(|V|)-sized buffers live in the leased epoch-stamped CandidateScratch
// instead of being allocated and zero-filled per call.
class SpaSearch {
 public:
  SpaSearch(const Graph& q, const Graph& g,
            const std::vector<std::vector<NsEntry>>& data_sig,
            const SPathOptions& options, const MatchOptions& opts,
            const SPathMatcher& matcher, const CandidateIndex* index,
            CandidateScratch& scr)
      : q_(q),
        g_(g),
        data_sig_(data_sig),
        options_(options),
        opts_(opts),
        matcher_(matcher),
        index_(index),
        scr_(scr),
        nv_(g.num_vertices()),
        guard_(opts.stop, opts.deadline, opts.guard_period, opts.stop2) {
    scr_.BeginCall(q.num_vertices(), nv_);
    if (index_ != nullptr && ResolveMultiwayEnabled(opts.multiway)) {
      multiway_ = true;
      simd_ = ResolveSimdLevel(opts.simd);
      mw_.resize(q.num_vertices());
    }
  }

  MatchResult Run() {
    const auto start = std::chrono::steady_clock::now();
    MatchResult r;
    if (q_.num_vertices() == 0) {
      r.embedding_count = 1;
      r.complete = true;
      if (opts_.sink) opts_.sink(Embedding{});
      r.elapsed = std::chrono::steady_clock::now() - start;
      return r;
    }
    if (BuildCandidates()) {
      BuildOrder();
      scr_.map.assign(q_.num_vertices(), kInvalidVertex);
      uint32_t start_depth = 0;
      if (opts_.resume != nullptr) {
        // Re-enter mid-search: candidate build and path-cover order are
        // pure functions of (query, graph), so they reproduce the
        // spilling owner's state exactly (shared-stage counters gated on
        // primary_range(), false here). Replay the prefix, then
        // enumerate its subtree.
        const std::vector<VertexId>& prefix = opts_.resume->prefix;
        for (uint32_t d = 0; d < prefix.size(); ++d) {
          scr_.map[scr_.order[d]] = prefix[d];
          SetUsed(prefix[d]);
        }
        start_depth = static_cast<uint32_t>(prefix.size());
      }
      Recurse(start_depth);
    }
    r.embedding_count = found_;
    r.complete = !guard_.interrupted();
    r.timed_out = guard_.state() == Interrupt::kDeadline;
    r.cancelled = guard_.state() == Interrupt::kCancelled;
    r.stats = stats_;
    r.elapsed = std::chrono::steady_clock::now() - start;
    return r;
  }

 private:
  bool CandBit(VertexId u, VertexId v) const {
    return scr_.cand_stamp[static_cast<size_t>(u) * nv_ + v] == scr_.epoch;
  }
  void SetCand(VertexId u, VertexId v) {
    scr_.cand_stamp[static_cast<size_t>(u) * nv_ + v] = scr_.epoch;
  }
  bool Used(VertexId v) const { return scr_.used_stamp[v] == scr_.epoch; }
  void SetUsed(VertexId v) { scr_.used_stamp[v] = scr_.epoch; }
  void ClearUsed(VertexId v) { scr_.used_stamp[v] = 0; }

  // The NLF prefilter runs before the O(labels * radius) dominance walk;
  // dominance at distance 1 implies fingerprint containment, so the
  // prefilter only skips work, never changes the candidate lists.
  bool BuildCandidates() {
    const auto query_sig =
        BuildDistanceSignatures(q_, options_.radius);
    const uint32_t nq = q_.num_vertices();
    std::vector<uint64_t> qnlf;
    if (index_ != nullptr) qnlf = CandidateIndex::QueryNlf(q_);
    for (VertexId u = 0; u < nq; ++u) {
      for (VertexId v : g_.VerticesWithLabel(q_.label(u))) {
        if (guard_.Check() != Interrupt::kNone) return false;
        if (g_.degree(v) < q_.degree(u)) continue;
        if (index_ != nullptr &&
            !index_->NlfAdmits(qnlf[u], q_.degree(u), v)) {
          // Every split range repeats this shared build stage; the
          // primary range alone counts it (exact stats folding).
          if (opts_.primary_range()) ++stats_.nlf_rejects;
          continue;
        }
        if (!SignatureDominates(query_sig[u], data_sig_[v])) continue;
        scr_.cand_list[u].push_back(v);
        SetCand(u, v);
      }
      if (scr_.cand_list[u].empty()) return false;
    }
    return true;
  }

  // Flattens the greedy path cover into a vertex visit order.
  void BuildOrder() {
    scr_.order.clear();
    std::vector<uint8_t> placed(q_.num_vertices(), 0);
    for (const auto& path : matcher_.DecomposeQuery(q_)) {
      for (VertexId u : path) {
        if (!placed[u]) {
          placed[u] = 1;
          scr_.order.push_back(u);
        }
      }
    }
    // Safety net for isolated query vertices (absent from any path).
    for (VertexId u = 0; u < q_.num_vertices(); ++u) {
      if (!placed[u]) scr_.order.push_back(u);
    }
  }

  bool Recurse(uint32_t depth) {
    if (depth == scr_.order.size()) {
      ++found_;
      if (opts_.sink && !opts_.sink(scr_.map)) return false;
      return found_ < opts_.max_embeddings;
    }
    // Work stealing: offer the subtree out before counting its node or
    // computing its candidate source (the thief's resumed call then
    // counts exactly what serial would have).
    if (opts_.spill != nullptr && depth == opts_.spill->depth && depth > 0 &&
        stats_.recursion_nodes >= opts_.spill->min_nodes) {
      spill_buf_.clear();
      for (uint32_t d = 0; d < depth; ++d) {
        spill_buf_.push_back(scr_.map[scr_.order[d]]);
      }
      if (opts_.spill->Offer(spill_buf_)) return true;
    }
    // The shared depth-0 node belongs to the primary split range (exact
    // per-range stats folding — see MatchOptions).
    if (depth != 0 || opts_.primary_range()) ++stats_.recursion_nodes;
    const VertexId u = scr_.order[depth];
    const LabelId ul = q_.label(u);
    // Multiway (WCOJ) extension: with >= 2 placed neighbours, intersect
    // all their label slices at once (match/intersect.hpp) — the survivor
    // sequence equals the anchored enumeration filtered by the edge loop,
    // in the same (degree, id) order. Skipped at a non-zero resume cursor
    // (spilled subtrees resume at cursor 0 in practice).
    std::span<const VertexId> source;
    bool mw = false;
    if (multiway_ && depth > 0 &&
        (opts_.resume == nullptr ||
         depth != static_cast<uint32_t>(opts_.resume->prefix.size()) ||
         opts_.resume->cursor == 0)) {
      auto& mws = mw_[depth];
      mws.inputs.clear();
      auto qadj = q_.neighbors(u);
      auto qel = q_.edge_labels(u);
      for (size_t i = 0; i < qadj.size(); ++i) {
        const VertexId img = scr_.map[qadj[i]];
        if (img != kInvalidVertex) mws.inputs.push_back({img, qel[i]});
      }
      if (mws.inputs.size() >= 2) {
        source = ExtendCandidates(*index_, g_, ul, simd_, mws, stats_);
        mw = true;
      }
    }
    if (!mw) {
      const VertexId anchor_img = CandidateIndex::PickAnchorImage(
          index_, q_, g_, u, ul,
          [this](VertexId w) { return scr_.map[w]; });
      source = CandidateIndex::AnchoredSource(
          index_, g_, anchor_img, ul,
          std::span<const VertexId>(scr_.cand_list[u]), stats_);
      // A split task enumerates only its block of the root frontier.
      if (depth == 0) source = SplitRootCandidates(source, opts_);
      // A resumed call skips the candidates before its cursor at the
      // resume depth (entered exactly once, straight from Run).
      if (opts_.resume != nullptr &&
          depth == static_cast<uint32_t>(opts_.resume->prefix.size())) {
        source = source.subspan(
            std::min<size_t>(opts_.resume->cursor, source.size()));
      }
    }
    for (VertexId v : source) {
      if (guard_.Check() != Interrupt::kNone) return false;
      ++stats_.candidates_tried;
      if (Used(v) || !CandBit(u, v)) continue;
      if (!mw) {
        // Edge-by-edge verification against the partial embedding, edge
        // labels included (the intersection settles this for survivors).
        bool edges_ok = true;
        auto qadj = q_.neighbors(u);
        auto qel = q_.edge_labels(u);
        for (size_t i = 0; i < qadj.size(); ++i) {
          const VertexId w = qadj[i];
          if (scr_.map[w] == kInvalidVertex) continue;
          if (!CandidateIndex::CheckEdge(index_, g_, v, scr_.map[w], qel[i],
                                         stats_)) {
            edges_ok = false;
            break;
          }
        }
        if (!edges_ok) continue;
      }
      scr_.map[u] = v;
      SetUsed(v);
      const bool keep_going = Recurse(depth + 1);
      ClearUsed(v);
      scr_.map[u] = kInvalidVertex;
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& q_;
  const Graph& g_;
  const std::vector<std::vector<NsEntry>>& data_sig_;
  const SPathOptions& options_;
  const MatchOptions& opts_;
  const SPathMatcher& matcher_;
  const CandidateIndex* index_;
  CandidateScratch& scr_;
  const uint32_t nv_;
  CostGuard guard_;
  MatchStats stats_;
  uint64_t found_ = 0;
  std::vector<VertexId> spill_buf_;  // prefix scratch for Offer()
  // Multiway extension kernel (match/intersect.hpp); per-depth scratch so
  // deeper extensions never clobber an outer survivor span.
  bool multiway_ = false;
  SimdLevel simd_ = SimdLevel::kScalar;
  std::vector<MultiwayScratch> mw_;
};

}  // namespace

Status SPathMatcher::Prepare(const Graph& data) {
  data_ = &data;
  data.EnsureLabelIndex();
  PrepareCandidateIndex(data);
  ns_ = BuildDistanceSignatures(data, options_.radius);
  return Status::OK();
}

std::vector<std::vector<VertexId>> SPathMatcher::DecomposeQuery(
    const Graph& query) const {
  const uint32_t n = query.num_vertices();
  const uint32_t max_len = std::max<uint32_t>(1, options_.max_path_length);

  // Path pool: for each start vertex (ascending id), a BFS tree with
  // min-id parent preference; one shortest path per reached vertex.
  std::vector<std::vector<VertexId>> pool;
  std::vector<uint32_t> dist(n);
  std::vector<VertexId> parent(n);
  for (VertexId src = 0; src < n; ++src) {
    std::fill(dist.begin(), dist.end(), static_cast<uint32_t>(-1));
    dist[src] = 0;
    parent[src] = kInvalidVertex;
    std::deque<VertexId> queue{src};
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      if (dist[v] >= max_len) continue;
      for (VertexId w : query.neighbors(v)) {
        if (dist[w] != static_cast<uint32_t>(-1)) continue;
        dist[w] = dist[v] + 1;
        parent[w] = v;  // BFS pops ascending-id parents first
        queue.push_back(w);
        // Materialize the path src -> w.
        std::vector<VertexId> path;
        for (VertexId x = w; x != kInvalidVertex; x = parent[x]) {
          path.push_back(x);
        }
        std::reverse(path.begin(), path.end());
        pool.push_back(std::move(path));
      }
    }
  }

  // Greedy selectivity-driven edge cover. Estimated path cost = product of
  // per-vertex candidate... at decomposition time the matcher does not have
  // the candidate lists yet, so the original's proxy is used: label
  // frequency in the stored graph per vertex on the path.
  std::vector<double> score(pool.size());
  for (size_t p = 0; p < pool.size(); ++p) {
    double s = 1.0;
    for (VertexId u : pool[p]) {
      s *= static_cast<double>(
               data_->VerticesWithLabel(query.label(u)).size()) +
           1.0;
    }
    score[p] = s;
  }

  auto edge_key = [n](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return static_cast<uint64_t>(a) * n + b;
  };
  std::vector<uint8_t> covered_edge(static_cast<size_t>(n) * n, 0);
  uint64_t uncovered = query.num_edges();
  std::vector<std::vector<VertexId>> selected;
  std::vector<uint8_t> taken(pool.size(), 0);
  while (uncovered > 0) {
    size_t best = pool.size();
    double best_rate = 0.0;
    for (size_t p = 0; p < pool.size(); ++p) {
      if (taken[p]) continue;
      uint32_t fresh = 0;
      for (size_t i = 0; i + 1 < pool[p].size(); ++i) {
        if (!covered_edge[edge_key(pool[p][i], pool[p][i + 1])]) ++fresh;
      }
      if (fresh == 0) continue;
      // Lower estimated result per newly covered edge wins; ties keep the
      // earlier (lower start id, shorter) pool entry.
      const double rate = score[p] / fresh;
      if (best == pool.size() || rate < best_rate) {
        best = p;
        best_rate = rate;
      }
    }
    if (best == pool.size()) break;  // disconnected leftovers
    taken[best] = 1;
    for (size_t i = 0; i + 1 < pool[best].size(); ++i) {
      auto& flag = covered_edge[edge_key(pool[best][i], pool[best][i + 1])];
      if (!flag) {
        flag = 1;
        --uncovered;
      }
    }
    selected.push_back(pool[best]);
  }
  return selected;
}

MatchResult SPathMatcher::Match(const Graph& query,
                                const MatchOptions& opts) const {
  ScratchLease scratch;
  SpaSearch search(query, *data_, ns_, options_, opts, *this,
                   candidate_index(), *scratch);
  MatchResult r = search.Run();
  NoteMatch(opts, r.stats);
  return r;
}

}  // namespace psi

// sPath (Zhao, Han — PVLDB 2010), as described in paper §3.1.2.
//
// Index phase: every data vertex keeps a *distance-wise* neighbourhood
// signature — for each label, the cumulative count of vertices carrying it
// within shortest-path distance 1..radius (paper setup: radius 4). This is
// the decomposed storage the original uses instead of materialising
// shortest paths.
//
// Query phase:
//   1. candidates per query vertex by signature dominance — an embedding
//      can only shrink shortest-path distances, so for every label and
//      every d the query's cumulative count must be covered by the data
//      vertex's count at the same d;
//   2. the query is decomposed into shortest paths (max length 4); a
//      greedy cover picks paths with the best estimated selectivity per
//      newly covered edge (ties resolved by generation order, which is
//      vertex-id driven — the rewriting hook);
//   3. the paths are instantiated in cover order with edge-by-edge
//      verification against the partial embedding.

#ifndef PSI_SPATH_SPATH_HPP_
#define PSI_SPATH_SPATH_HPP_

#include <array>
#include <cstdint>
#include <vector>

#include "match/matcher.hpp"

namespace psi {

struct SPathOptions {
  /// Neighbourhood signature radius (paper §3.2: 4).
  uint32_t radius = 4;
  /// Maximum decomposed path length in edges (paper §3.2: 4).
  uint32_t max_path_length = 4;
};

class SPathMatcher : public Matcher {
 public:
  static constexpr uint32_t kMaxRadius = 4;

  /// Cumulative per-distance label counts: cum[d-1] = #vertices with
  /// `label` at shortest distance <= d.
  struct NsEntry {
    LabelId label;
    std::array<uint32_t, kMaxRadius> cum;
  };

  SPathMatcher() = default;
  explicit SPathMatcher(const SPathOptions& options) : options_(options) {}

  std::string_view name() const override { return "SPA"; }
  Status Prepare(const Graph& data) override;
  MatchResult Match(const Graph& query,
                    const MatchOptions& opts) const override;
  const Graph* data() const override { return data_; }
  /// Honours MatchOptions root ranges (match/parallel.hpp splits here).
  bool SupportsRootSplit() const override { return true; }

  /// Exposed for tests: the signature of data vertex `v` (sorted by label).
  const std::vector<NsEntry>& signature(VertexId v) const {
    return ns_[v];
  }

  /// Exposed for tests: the shortest-path cover chosen for `query`
  /// (sequences of query vertex ids).
  std::vector<std::vector<VertexId>> DecomposeQuery(
      const Graph& query) const;

 private:
  SPathOptions options_;
  const Graph* data_ = nullptr;
  std::vector<std::vector<NsEntry>> ns_;
};

/// Builds the distance-wise signatures for an arbitrary graph — shared by
/// the matcher (data side), the per-query filter, and tests.
std::vector<std::vector<SPathMatcher::NsEntry>> BuildDistanceSignatures(
    const Graph& g, uint32_t radius);

}  // namespace psi

#endif  // PSI_SPATH_SPATH_HPP_

#include "vf2/vf2.hpp"

#include <algorithm>
#include <vector>

#include "match/candidate_index.hpp"
#include "match/intersect.hpp"

namespace psi {

namespace {

// Mutable search state for one Vf2Match call. All arrays are indexed by
// vertex id; `in_q`/`in_g` hold the depth+1 at which a vertex entered the
// terminal set (0 = never), enabling O(1) backtracking.
class Vf2State {
 public:
  Vf2State(const Graph& q, const Graph& g, const MatchOptions& opts,
           const CandidateIndex* index)
      : q_(q),
        g_(g),
        opts_(opts),
        index_(index),
        guard_(opts.stop, opts.deadline, opts.guard_period, opts.stop2),
        core_q_(q.num_vertices(), kInvalidVertex),
        core_g_(g.num_vertices(), kInvalidVertex),
        in_q_(q.num_vertices(), 0),
        in_g_(g.num_vertices(), 0) {
    if (index_ != nullptr) {
      qnlf_ = CandidateIndex::QueryNlf(q);
      if (ResolveMultiwayEnabled(opts.multiway)) {
        multiway_ = true;
        simd_ = ResolveSimdLevel(opts.simd);
        mw_.resize(q.num_vertices());
      }
    }
  }

  MatchResult Run() {
    const auto start = std::chrono::steady_clock::now();
    MatchResult r;
    if (q_.num_vertices() == 0) {
      // The empty query has exactly one (empty) embedding.
      r.embedding_count = 1;
      r.complete = true;
      if (opts_.sink) opts_.sink(Embedding{});
    } else if (opts_.resume != nullptr) {
      // Re-enter mid-search: replay the spilled prefix stat-free (the
      // spilling owner counted the whole path) and enumerate exactly the
      // subtree it skipped. NextQueryVertex is a pure function of the
      // assignment, so the replay reconstructs the owner's order.
      const std::vector<VertexId>& prefix = opts_.resume->prefix;
      for (uint32_t d = 0; d < prefix.size(); ++d) {
        Push(NextQueryVertex(), prefix[d], d);
      }
      Recurse(static_cast<uint32_t>(prefix.size()));
      r.embedding_count = found_;
      r.complete = !guard_.interrupted();
      r.timed_out = guard_.state() == Interrupt::kDeadline;
      r.cancelled = guard_.state() == Interrupt::kCancelled;
    } else if (FeasibleOnCounts()) {
      Recurse(0);
      r.embedding_count = found_;
      r.complete = !guard_.interrupted();
      r.timed_out = guard_.state() == Interrupt::kDeadline;
      r.cancelled = guard_.state() == Interrupt::kCancelled;
    } else {
      r.complete = true;
    }
    r.stats = stats_;
    r.elapsed = std::chrono::steady_clock::now() - start;
    return r;
  }

 private:
  // Cheap global reject: not enough vertices of some label in g.
  bool FeasibleOnCounts() const {
    if (q_.num_vertices() > g_.num_vertices()) return false;
    if (q_.num_edges() > g_.num_edges()) return false;
    for (VertexId qv = 0; qv < q_.num_vertices(); ++qv) {
      if (g_.VerticesWithLabel(q_.label(qv)).empty()) return false;
    }
    return true;
  }

  // Chooses the next query vertex: smallest-ID unmatched vertex in the
  // terminal set; if the terminal set is empty (start / disconnected query
  // part), smallest-ID unmatched vertex overall.
  VertexId NextQueryVertex() const {
    VertexId fallback = kInvalidVertex;
    for (VertexId qv = 0; qv < q_.num_vertices(); ++qv) {
      if (core_q_[qv] != kInvalidVertex) continue;
      if (in_q_[qv] != 0) return qv;
      if (fallback == kInvalidVertex) fallback = qv;
    }
    return fallback;
  }

  // The three pruning rules of §3.1.1 for candidate pair (qv, gv).
  bool Feasible(VertexId qv, VertexId gv) {
    if (q_.label(qv) != g_.label(gv)) return false;
    // Rule 1 — consistency: every matched neighbour of qv must map to a
    // neighbour of gv through an equally-labelled edge (non-induced: one
    // direction only).
    {
      auto adj = q_.neighbors(qv);
      auto elabels = q_.edge_labels(qv);
      for (size_t i = 0; i < adj.size(); ++i) {
        const VertexId qw = adj[i];
        if (core_q_[qw] == kInvalidVertex) continue;
        if (!CandidateIndex::CheckEdge(index_, g_, gv, core_q_[qw],
                                       elabels[i], stats_)) {
          return false;
        }
      }
    }
    return FeasibleLookahead(qv, gv);
  }

  // Rules 2 & 3 alone — the multiway survivor check: label and rule 1 are
  // already established by the intersection (survivors are label-slice
  // members adjacent to every matched neighbour through the required edge
  // labels).
  bool FeasibleLookahead(VertexId qv, VertexId gv) {
    // Lookahead: count qv's unmatched neighbours inside and outside the
    // terminal set; gv must offer at least as many of each.
    uint32_t q_term = 0, q_new = 0;
    for (VertexId qw : q_.neighbors(qv)) {
      if (core_q_[qw] != kInvalidVertex) continue;
      in_q_[qw] != 0 ? ++q_term : ++q_new;
    }
    uint32_t g_term = 0, g_new = 0;
    for (VertexId gw : g_.neighbors(gv)) {
      if (core_g_[gw] != kInvalidVertex) continue;
      in_g_[gw] != 0 ? ++g_term : ++g_new;
    }
    // A terminal data vertex can also serve a "new" query neighbour, hence
    // the combined bound as the third rule.
    return q_term <= g_term && (q_term + q_new) <= (g_term + g_new);
  }

  void Push(VertexId qv, VertexId gv, uint32_t depth) {
    core_q_[qv] = gv;
    core_g_[gv] = qv;
    if (in_q_[qv] == 0) in_q_[qv] = depth + 1;
    if (in_g_[gv] == 0) in_g_[gv] = depth + 1;
    for (VertexId qw : q_.neighbors(qv)) {
      if (in_q_[qw] == 0) in_q_[qw] = depth + 1;
    }
    for (VertexId gw : g_.neighbors(gv)) {
      if (in_g_[gw] == 0) in_g_[gw] = depth + 1;
    }
  }

  void Pop(VertexId qv, VertexId gv, uint32_t depth) {
    for (VertexId qw : q_.neighbors(qv)) {
      if (in_q_[qw] == depth + 1) in_q_[qw] = 0;
    }
    for (VertexId gw : g_.neighbors(gv)) {
      if (in_g_[gw] == depth + 1) in_g_[gw] = 0;
    }
    if (in_q_[qv] == depth + 1) in_q_[qv] = 0;
    if (in_g_[gv] == depth + 1) in_g_[gv] = 0;
    core_q_[qv] = kInvalidVertex;
    core_g_[gv] = kInvalidVertex;
  }

  // Returns false when the search should unwind entirely (cap reached or
  // interrupted).
  bool Recurse(uint32_t depth) {
    if (depth == q_.num_vertices()) {
      ++found_;
      if (opts_.sink && !opts_.sink(core_q_)) return false;
      return found_ < opts_.max_embeddings;
    }
    // Work stealing: offer the whole subtree out *before* counting its
    // node — an accepted offer means this call counts nothing for it and
    // the thief's resumed call counts exactly what serial would have.
    if (opts_.spill != nullptr && depth == opts_.spill->depth && depth > 0 &&
        stats_.recursion_nodes >= opts_.spill->min_nodes &&
        opts_.spill->Offer(path_)) {
      return true;
    }
    // The shared depth-0 node is counted by the primary split range only,
    // so per-range stats merged with MatchStats::Add equal the serial
    // counters exactly.
    if (depth != 0 || opts_.primary_range()) ++stats_.recursion_nodes;
    const VertexId qv = NextQueryVertex();

    // Candidate enumeration in ascending data-vertex id (slice-internal
    // (degree, id) order under the index). If qv has a
    // matched neighbour, its image's adjacency is the tightest candidate
    // source (rule 1 pre-applied); otherwise fall back to the label index.
    // With the candidate index the anchor's *label slice* replaces its
    // full adjacency, and the anchor itself is chosen by the size of that
    // label-restricted slice, not raw degree (PickAnchorImage).
    const LabelId ql = q_.label(qv);
    // Multiway (WCOJ) extension: with >= 2 matched backward neighbours,
    // intersect all their label slices at once (match/intersect.hpp). The
    // survivor sequence equals the legacy anchored enumeration filtered by
    // rule 1, in the same (degree, id) order, so the stream is unchanged.
    // Skipped at a non-zero resume cursor (the legacy span subsetting
    // applies there; in practice spilled subtrees resume at cursor 0).
    std::span<const VertexId> candidates;
    bool mw = false;
    if (multiway_ && depth > 0 &&
        (opts_.resume == nullptr ||
         depth != static_cast<uint32_t>(opts_.resume->prefix.size()) ||
         opts_.resume->cursor == 0)) {
      auto& scr = mw_[depth];
      scr.inputs.clear();
      auto adj = q_.neighbors(qv);
      auto elabels = q_.edge_labels(qv);
      for (size_t i = 0; i < adj.size(); ++i) {
        const VertexId img = core_q_[adj[i]];
        if (img != kInvalidVertex) scr.inputs.push_back({img, elabels[i]});
      }
      if (scr.inputs.size() >= 2) {
        candidates = ExtendCandidates(*index_, g_, ql, simd_, scr, stats_);
        mw = true;
      }
    }
    if (!mw) {
      const VertexId anchor = CandidateIndex::PickAnchorImage(
          index_, q_, g_, qv, ql,
          [this](VertexId qw) { return core_q_[qw]; });
      candidates =
          CandidateIndex::AnchoredSource(index_, g_, anchor, ql,
                                         g_.VerticesWithLabel(ql), stats_);
      // A split task enumerates only its block of the root frontier.
      if (depth == 0) candidates = SplitRootCandidates(candidates, opts_);
      // A resumed call skips the candidates before its cursor at the
      // resume depth (entered exactly once, straight from Run).
      if (opts_.resume != nullptr &&
          depth == static_cast<uint32_t>(opts_.resume->prefix.size())) {
        candidates = candidates.subspan(
            std::min<size_t>(opts_.resume->cursor, candidates.size()));
      }
    }

    for (VertexId gv : candidates) {
      if (guard_.Check() != Interrupt::kNone) return false;
      if (core_g_[gv] != kInvalidVertex) continue;
      if (index_ != nullptr &&
          !index_->NlfAdmits(qnlf_[qv], q_.degree(qv), gv)) {
        ++stats_.nlf_rejects;
        continue;
      }
      ++stats_.candidates_tried;
      if (mw ? !FeasibleLookahead(qv, gv) : !Feasible(qv, gv)) continue;
      Push(qv, gv, depth);
      // Track the assignment path up to the spill depth (VF2's vertex
      // order is dynamic, so the prefix cannot be reconstructed from
      // core_q_ without it).
      const bool track = opts_.spill != nullptr && depth < opts_.spill->depth;
      if (track) path_.push_back(gv);
      const bool keep_going = Recurse(depth + 1);
      if (track) path_.pop_back();
      Pop(qv, gv, depth);
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& q_;
  const Graph& g_;
  const MatchOptions& opts_;
  const CandidateIndex* index_;
  CostGuard guard_;
  MatchStats stats_;
  uint64_t found_ = 0;
  std::vector<VertexId> core_q_;
  std::vector<VertexId> core_g_;
  // Depth+1 at which the vertex joined the terminal set; 0 = not a member.
  std::vector<uint32_t> in_q_;
  std::vector<uint32_t> in_g_;
  // Query-side NLF fingerprints; empty when index_ == nullptr.
  std::vector<uint64_t> qnlf_;
  // Multiway extension kernel (match/intersect.hpp): enabled only with
  // the index; one scratch per depth so a deeper extension never clobbers
  // the survivor span an outer loop is iterating.
  bool multiway_ = false;
  SimdLevel simd_ = SimdLevel::kScalar;
  std::vector<MultiwayScratch> mw_;
  // Data-vertex images along the current path, maintained (only when a
  // spill hook is set) up to the spill depth — the prefix Offer() hands out.
  std::vector<VertexId> path_;
};

}  // namespace

MatchResult Vf2Match(const Graph& query, const Graph& data,
                     const MatchOptions& opts) {
  Vf2State state(query, data, opts, nullptr);
  return state.Run();
}

MatchResult Vf2Match(const Graph& query, const Graph& data,
                     const MatchOptions& opts,
                     const CandidateIndex* index) {
  Vf2State state(query, data, opts, index);
  return state.Run();
}

Status Vf2Matcher::Prepare(const Graph& data) {
  data_ = &data;
  data.EnsureLabelIndex();
  PrepareCandidateIndex(data);
  return Status::OK();
}

MatchResult Vf2Matcher::Match(const Graph& query,
                              const MatchOptions& opts) const {
  MatchResult r = Vf2Match(query, *data_, opts, candidate_index());
  NoteMatch(opts, r.stats);
  return r;
}

}  // namespace psi

// VF2 subgraph-isomorphism algorithm (Cordella, Foggia, Sansone, Vento,
// TPAMI 2004), non-induced and vertex-labelled, as used by Grapes and GGSX
// for their verification stage (paper §3.1.1).
//
// Ordering contract (load-bearing for the paper's findings): VF2 imposes no
// algorithmic query-vertex order — the next query vertex is the *smallest-ID*
// unmatched vertex adjacent to the matched region, and data-graph candidates
// are tried in ascending vertex id (the candidate index's (degree, id)
// slice order when the kernel is active — deterministic either way). Query
// rewritings therefore directly steer the search.

#ifndef PSI_VF2_VF2_HPP_
#define PSI_VF2_VF2_HPP_

#include "match/matcher.hpp"

namespace psi {

/// Runs VF2 directly on a (query, data) pair — the FTV verification entry
/// point, where each candidate graph is matched once and no per-graph state
/// is worth keeping.
MatchResult Vf2Match(const Graph& query, const Graph& data,
                     const MatchOptions& opts);

/// VF2 over a prebuilt candidate index (match/candidate_index.hpp) for
/// `data`: anchored enumeration walks the anchor image's label slice, an
/// O(1) NLF prefilter runs before the feasibility rules, and backward
/// edges resolve through hub bitsets. `index == nullptr` is the plain
/// search; answers (and the embedding stream) are identical either way —
/// the Grapes/GGSX verification passes its per-stored-graph indexes here.
MatchResult Vf2Match(const Graph& query, const Graph& data,
                     const MatchOptions& opts, const CandidateIndex* index);

/// Matcher adapter so VF2 can participate in NFV portfolios. Prepare()
/// records the stored graph and resolves the shared candidate index (VF2
/// keeps no algorithm-specific index of its own).
class Vf2Matcher : public Matcher {
 public:
  std::string_view name() const override { return "VF2"; }
  Status Prepare(const Graph& data) override;
  MatchResult Match(const Graph& query,
                    const MatchOptions& opts) const override;
  const Graph* data() const override { return data_; }
  /// Honours MatchOptions root ranges (match/parallel.hpp splits here).
  bool SupportsRootSplit() const override { return true; }

 private:
  const Graph* data_ = nullptr;
};

}  // namespace psi

#endif  // PSI_VF2_VF2_HPP_

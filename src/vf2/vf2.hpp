// VF2 subgraph-isomorphism algorithm (Cordella, Foggia, Sansone, Vento,
// TPAMI 2004), non-induced and vertex-labelled, as used by Grapes and GGSX
// for their verification stage (paper §3.1.1).
//
// Ordering contract (load-bearing for the paper's findings): VF2 imposes no
// algorithmic query-vertex order — the next query vertex is the *smallest-ID*
// unmatched vertex adjacent to the matched region, and data-graph candidates
// are tried in ascending vertex id. Query rewritings therefore directly
// steer the search.

#ifndef PSI_VF2_VF2_HPP_
#define PSI_VF2_VF2_HPP_

#include "match/matcher.hpp"

namespace psi {

/// Runs VF2 directly on a (query, data) pair — the FTV verification entry
/// point, where each candidate graph is matched once and no per-graph state
/// is worth keeping.
MatchResult Vf2Match(const Graph& query, const Graph& data,
                     const MatchOptions& opts);

/// Matcher adapter so VF2 can participate in NFV portfolios. Prepare() just
/// records the stored graph (VF2 keeps no index).
class Vf2Matcher : public Matcher {
 public:
  std::string_view name() const override { return "VF2"; }
  Status Prepare(const Graph& data) override {
    data_ = &data;
    data.EnsureLabelIndex();
    return Status::OK();
  }
  MatchResult Match(const Graph& query,
                    const MatchOptions& opts) const override {
    return Vf2Match(query, *data_, opts);
  }
  const Graph* data() const override { return data_; }

 private:
  const Graph* data_ = nullptr;
};

}  // namespace psi

#endif  // PSI_VF2_VF2_HPP_

#include "io/graph_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace psi::io {

namespace {

Status ParseError(size_t line_no, const std::string& what) {
  return Status::Corruption("line " + std::to_string(line_no) + ": " + what);
}

// Exception-free unsigned parse of a full line.
bool ParseUint(const std::string& s, uint64_t* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  while (first < last && (*first == ' ' || *first == '\t')) ++first;
  auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec != std::errc()) return false;
  while (ptr < last && (*ptr == ' ' || *ptr == '\t')) ++ptr;
  return ptr == last;
}

// Reads the next non-empty line; returns false at EOF.
bool NextLine(std::istream& in, std::string* line, size_t* line_no) {
  while (std::getline(in, *line)) {
    ++*line_no;
    // Trim trailing CR (files written on Windows, as in the paper's setup).
    if (!line->empty() && line->back() == '\r') line->pop_back();
    if (!line->empty()) return true;
  }
  return false;
}

}  // namespace

Result<GraphDataset> ReadGfu(std::istream& in, LabelDict* dict) {
  GraphDataset ds;
  std::string line;
  size_t line_no = 0;
  while (NextLine(in, &line, &line_no)) {
    if (line[0] != '#') {
      return ParseError(line_no, "expected '#graph_name'");
    }
    const std::string name = line.substr(1);
    if (!NextLine(in, &line, &line_no)) {
      return ParseError(line_no, "missing vertex count");
    }
    uint64_t n64 = 0;
    if (!ParseUint(line, &n64)) {
      return ParseError(line_no, "bad vertex count '" + line + "'");
    }
    const auto n = static_cast<uint32_t>(n64);
    GraphBuilder b(n);
    for (uint32_t v = 0; v < n; ++v) {
      if (!NextLine(in, &line, &line_no)) {
        return ParseError(line_no, "missing vertex label");
      }
      b.AddVertex(dict->Intern(line));
    }
    if (!NextLine(in, &line, &line_no)) {
      return ParseError(line_no, "missing edge count");
    }
    uint64_t m = 0;
    if (!ParseUint(line, &m)) {
      return ParseError(line_no, "bad edge count '" + line + "'");
    }
    for (uint64_t e = 0; e < m; ++e) {
      if (!NextLine(in, &line, &line_no)) {
        return ParseError(line_no, "missing edge");
      }
      std::istringstream es(line);
      uint32_t u = 0, v = 0;
      if (!(es >> u >> v)) {
        return ParseError(line_no, "bad edge '" + line + "'");
      }
      b.AddEdge(u, v);
    }
    auto g = b.Build(name);
    if (!g.ok()) return g.status();
    ds.Add(std::move(g).value());
  }
  return ds;
}

Result<GraphDataset> ReadGfuFile(const std::string& path, LabelDict* dict) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGfu(in, dict);
}

Status WriteGfu(const GraphDataset& ds, const LabelDict& dict,
                std::ostream& out) {
  for (const Graph& g : ds.graphs()) {
    out << '#' << (g.name().empty() ? "graph" : g.name()) << '\n';
    out << g.num_vertices() << '\n';
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.label(v) >= dict.size()) {
        return Status::InvalidArgument("label not in dictionary");
      }
      out << dict.name(g.label(v)) << '\n';
    }
    out << g.num_edges() << '\n';
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId w : g.neighbors(v)) {
        if (v < w) out << v << ' ' << w << '\n';
      }
    }
  }
  return out.good() ? Status::OK() : Status::IOError("write failed");
}

Result<GraphDataset> ReadTve(std::istream& in, LabelDict* dict) {
  GraphDataset ds;
  std::string line;
  size_t line_no = 0;
  bool in_graph = false;
  std::string pending_name;
  std::vector<LabelId> labels;
  struct TveEdge {
    uint32_t u, v, label;
  };
  std::vector<TveEdge> edges;

  auto flush = [&]() -> Status {
    if (!in_graph) return Status::OK();
    GraphBuilder b(static_cast<uint32_t>(labels.size()));
    for (LabelId l : labels) b.AddVertex(l);
    for (const auto& e : edges) b.AddEdge(e.u, e.v, e.label);
    auto g = b.Build(pending_name);
    if (!g.ok()) return g.status();
    ds.Add(std::move(g).value());
    labels.clear();
    edges.clear();
    return Status::OK();
  };

  while (NextLine(in, &line, &line_no)) {
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      PSI_RETURN_NOT_OK(flush());
      std::string hash;
      std::string id;
      ls >> hash >> id;
      pending_name = "t" + id;
      in_graph = true;
    } else if (tag == 'v') {
      if (!in_graph) return ParseError(line_no, "'v' before 't'");
      uint32_t id = 0;
      std::string label;
      if (!(ls >> id >> label)) return ParseError(line_no, "bad 'v' line");
      if (id != labels.size()) {
        return ParseError(line_no, "non-dense vertex ids");
      }
      labels.push_back(dict->Intern(label));
    } else if (tag == 'e') {
      if (!in_graph) return ParseError(line_no, "'e' before 't'");
      uint32_t u = 0, v = 0;
      if (!(ls >> u >> v)) return ParseError(line_no, "bad 'e' line");
      uint32_t edge_label = 0;
      ls >> edge_label;  // optional numeric edge label
      edges.push_back({u, v, edge_label});
    } else {
      return ParseError(line_no, "unknown tag '" + std::string(1, tag) + "'");
    }
  }
  PSI_RETURN_NOT_OK(flush());
  return ds;
}

Result<GraphDataset> ReadTveFile(const std::string& path, LabelDict* dict) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadTve(in, dict);
}

Status WriteTve(const GraphDataset& ds, const LabelDict& dict,
                std::ostream& out) {
  for (size_t i = 0; i < ds.size(); ++i) {
    const Graph& g = ds.graph(i);
    out << "t # " << i << '\n';
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.label(v) >= dict.size()) {
        return Status::InvalidArgument("label not in dictionary");
      }
      out << "v " << v << ' ' << dict.name(g.label(v)) << '\n';
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto adj = g.neighbors(v);
      auto elabels = g.edge_labels(v);
      for (size_t i = 0; i < adj.size(); ++i) {
        if (v < adj[i]) {
          out << "e " << v << ' ' << adj[i];
          if (g.has_edge_labels()) out << ' ' << elabels[i];
          out << '\n';
        }
      }
    }
  }
  return out.good() ? Status::OK() : Status::IOError("write failed");
}

}  // namespace psi::io

// Dataset file formats.
//
// GFU — the format consumed by the original Grapes/GGSX binaries:
//     #graph_name
//     <num_vertices>
//     <vertex label>            (one line per vertex, in id order)
//     <num_edges>
//     <u> <v>                   (one line per edge)
//   A file may concatenate many graphs (an FTV dataset).
//
// TVE — the transactional format used by the implementations of [12]
// (QuickSI/GraphQL/sPath) and common in graph-DB benchmarks:
//     t # <graph_id>
//     v <vertex_id> <label>
//     e <u> <v>
//
// Both readers intern string labels through a shared LabelDict so graphs
// loaded from different files are label-compatible.

#ifndef PSI_IO_GRAPH_IO_HPP_
#define PSI_IO_GRAPH_IO_HPP_

#include <iosfwd>
#include <string>

#include "core/dataset.hpp"
#include "core/graph.hpp"
#include "core/status.hpp"
#include "io/label_dict.hpp"

namespace psi::io {

/// Parses a GFU stream (one or more graphs).
Result<GraphDataset> ReadGfu(std::istream& in, LabelDict* dict);
Result<GraphDataset> ReadGfuFile(const std::string& path, LabelDict* dict);
/// Writes a dataset in GFU form.
Status WriteGfu(const GraphDataset& ds, const LabelDict& dict,
                std::ostream& out);

/// Parses a TVE stream (one or more `t # i` blocks).
Result<GraphDataset> ReadTve(std::istream& in, LabelDict* dict);
Result<GraphDataset> ReadTveFile(const std::string& path, LabelDict* dict);
/// Writes a dataset in TVE form.
Status WriteTve(const GraphDataset& ds, const LabelDict& dict,
                std::ostream& out);

}  // namespace psi::io

#endif  // PSI_IO_GRAPH_IO_HPP_

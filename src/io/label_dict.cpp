#include "io/label_dict.hpp"

namespace psi::io {

LabelId LabelDict::Intern(std::string_view label) {
  auto it = ids_.find(std::string(label));
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(label);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelDict::Lookup(std::string_view label) const {
  auto it = ids_.find(std::string(label));
  return it == ids_.end() ? kInvalidLabel : it->second;
}

}  // namespace psi::io

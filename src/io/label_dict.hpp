// Bidirectional mapping between external string labels (as they appear in
// GFU / transactional dataset files) and the dense integer LabelIds used
// throughout the library.

#ifndef PSI_IO_LABEL_DICT_HPP_
#define PSI_IO_LABEL_DICT_HPP_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/graph.hpp"

namespace psi::io {

/// Interns label strings; ids are assigned densely in first-seen order.
class LabelDict {
 public:
  /// Returns the id for `label`, creating one if unseen.
  LabelId Intern(std::string_view label);
  /// Returns the id for `label` or kInvalidLabel when unknown.
  static constexpr LabelId kInvalidLabel = static_cast<LabelId>(-1);
  LabelId Lookup(std::string_view label) const;
  /// The external string for `id`. Precondition: id < size().
  const std::string& name(LabelId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

}  // namespace psi::io

#endif  // PSI_IO_LABEL_DICT_HPP_

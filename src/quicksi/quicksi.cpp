#include "quicksi/quicksi.hpp"

#include <algorithm>
#include <chrono>

#include "match/candidate_index.hpp"
#include "match/intersect.hpp"

namespace psi {

namespace {

// Hash key over {endpoint labels} x edge label for the edge-frequency
// statistics ("inner support" of edges).
uint64_t EdgeKey(LabelId a, LabelId b, LabelId edge_label) {
  if (a > b) std::swap(a, b);
  uint64_t h = (static_cast<uint64_t>(a) << 32) | b;
  h ^= 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(edge_label) + 1);
  return h;
}

// Depth-first execution of a QI-sequence.
class QsiSearch {
 public:
  QsiSearch(const Graph& q, const Graph& g,
            const std::vector<QsiEntry>& seq, const MatchOptions& opts,
            const CandidateIndex* index)
      : q_(q),
        g_(g),
        seq_(seq),
        opts_(opts),
        index_(index),
        guard_(opts.stop, opts.deadline, opts.guard_period, opts.stop2),
        map_(q.num_vertices(), kInvalidVertex),
        used_(g.num_vertices(), 0) {
    if (index_ != nullptr) {
      qnlf_ = CandidateIndex::QueryNlf(q);
      if (ResolveMultiwayEnabled(opts.multiway)) {
        multiway_ = true;
        simd_ = ResolveSimdLevel(opts.simd);
        mw_.resize(q.num_vertices());
      }
    }
  }

  MatchResult Run() {
    const auto start = std::chrono::steady_clock::now();
    MatchResult r;
    if (q_.num_vertices() == 0) {
      r.embedding_count = 1;
      r.complete = true;
      if (opts_.sink) opts_.sink(Embedding{});
    } else {
      uint32_t start_depth = 0;
      if (opts_.resume != nullptr) {
        // Re-enter mid-search: replay the spilled prefix along the (fully
        // deterministic) QI-sequence, stat-free — the spilling owner
        // counted the whole path.
        const std::vector<VertexId>& prefix = opts_.resume->prefix;
        for (uint32_t d = 0; d < prefix.size(); ++d) {
          map_[seq_[d].vertex] = prefix[d];
          used_[prefix[d]] = 1;
        }
        start_depth = static_cast<uint32_t>(prefix.size());
      }
      Recurse(start_depth);
      r.embedding_count = found_;
      r.complete = !guard_.interrupted();
      r.timed_out = guard_.state() == Interrupt::kDeadline;
      r.cancelled = guard_.state() == Interrupt::kCancelled;
    }
    r.stats = stats_;
    r.elapsed = std::chrono::steady_clock::now() - start;
    return r;
  }

 private:
  // Label + parent-adjacency + back-edge checks only — faithful to the
  // original QuickSI, which carries no degree-based pruning (its fragility
  // on bad orders is exactly what the paper's Fig 2/Table 3 expose; the
  // candidate index's NLF prefilter in Recurse is an answer-preserving
  // kernel accelerator on top, PSI_MATCH_INDEX=0 restores the original).
  bool Feasible(const QsiEntry& e, VertexId gv, LabelId via_edge_label) {
    if (used_[gv] || g_.label(gv) != q_.label(e.vertex)) return false;
    if (e.parent != kInvalidVertex &&
        via_edge_label != e.parent_edge_label) {
      return false;
    }
    for (size_t i = 0; i < e.back_edges.size(); ++i) {
      if (!CandidateIndex::CheckEdge(index_, g_, gv, map_[e.back_edges[i]],
                                     e.back_edge_labels[i], stats_)) {
        return false;
      }
    }
    return true;
  }

  bool Place(uint32_t depth, VertexId gv) {
    const QsiEntry& e = seq_[depth];
    map_[e.vertex] = gv;
    used_[gv] = 1;
    const bool keep_going = Recurse(depth + 1);
    used_[gv] = 0;
    map_[e.vertex] = kInvalidVertex;
    return keep_going;
  }

  bool Recurse(uint32_t depth) {
    if (depth == seq_.size()) {
      ++found_;
      if (opts_.sink && !opts_.sink(map_)) return false;
      return found_ < opts_.max_embeddings;
    }
    // Work stealing: offer the subtree out before counting its node (the
    // thief's resumed call then counts exactly what serial would have).
    // The prefix is reconstructed from the QI-sequence images.
    if (opts_.spill != nullptr && depth == opts_.spill->depth && depth > 0 &&
        stats_.recursion_nodes >= opts_.spill->min_nodes) {
      spill_buf_.clear();
      for (uint32_t d = 0; d < depth; ++d) {
        spill_buf_.push_back(map_[seq_[d].vertex]);
      }
      if (opts_.spill->Offer(spill_buf_)) return true;
    }
    // The shared depth-0 node belongs to the primary split range (exact
    // per-range stats folding — see MatchOptions).
    if (depth != 0 || opts_.primary_range()) ++stats_.recursion_nodes;
    const QsiEntry& e = seq_[depth];
    // Tree children draw candidates from the parent image's adjacency
    // (edge labels ride along in the parallel span); roots scan the label
    // index. With the candidate index, a child enumerates only the parent
    // image's correctly-labelled slice — the label check in Feasible would
    // have rejected the rest one by one — in the slice's (degree, id)
    // order; without it, plain ascending id.
    std::span<const VertexId> candidates;
    std::span<const LabelId> via_labels;
    // Multiway (WCOJ) extension: a tree child with back edges has >= 2
    // matched backward neighbours (parent + back edges); intersect all
    // their label slices at once (match/intersect.hpp). Survivors arrive
    // in the parent slice's subsequence order — the stream is unchanged —
    // with the via-label and back-edge checks already settled, so the
    // survivor loop only tests injectivity. Skipped at a non-zero resume
    // cursor (spilled subtrees resume at cursor 0 in practice).
    bool mw = false;
    if (multiway_ && e.parent != kInvalidVertex && !e.back_edges.empty() &&
        (opts_.resume == nullptr ||
         depth != static_cast<uint32_t>(opts_.resume->prefix.size()) ||
         opts_.resume->cursor == 0)) {
      auto& scr = mw_[depth];
      scr.inputs.clear();
      scr.inputs.push_back({map_[e.parent], e.parent_edge_label});
      for (size_t i = 0; i < e.back_edges.size(); ++i) {
        scr.inputs.push_back(
            {map_[e.back_edges[i]], e.back_edge_labels[i]});
      }
      candidates =
          ExtendCandidates(*index_, g_, q_.label(e.vertex), simd_, scr,
                           stats_);
      mw = true;
    } else if (e.parent != kInvalidVertex) {
      if (index_ != nullptr) {
        const CandidateIndex::LabelSlice slice =
            index_->Slice(map_[e.parent], q_.label(e.vertex));
        candidates = slice.vertices;
        via_labels = slice.edge_labels;
        stats_.slice_candidates += candidates.size();
      } else {
        candidates = g_.neighbors(map_[e.parent]);
        via_labels = g_.edge_labels(map_[e.parent]);
      }
    } else {
      candidates = g_.VerticesWithLabel(q_.label(e.vertex));
    }
    // A split task enumerates only its block of the root frontier (the
    // QI-sequence root is always depth 0; later roots of a disconnected
    // forest enumerate fully — they multiply under every root candidate).
    if (depth == 0) candidates = SplitRootCandidates(candidates, opts_);
    // A resumed call skips the candidates before its cursor at the resume
    // depth (entered exactly once, straight from Run).
    if (opts_.resume != nullptr &&
        depth == static_cast<uint32_t>(opts_.resume->prefix.size())) {
      const size_t skip =
          std::min<size_t>(opts_.resume->cursor, candidates.size());
      candidates = candidates.subspan(skip);
      if (!via_labels.empty()) via_labels = via_labels.subspan(skip);
    }
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      const VertexId gv = candidates[ci];
      if (guard_.Check() != Interrupt::kNone) return false;
      if (index_ != nullptr &&
          !index_->NlfAdmits(qnlf_[e.vertex], q_.degree(e.vertex), gv)) {
        ++stats_.nlf_rejects;
        continue;
      }
      ++stats_.candidates_tried;
      if (mw) {
        // Label, via-label and back edges are settled by the
        // intersection; only injectivity remains.
        if (used_[gv]) continue;
      } else {
        const LabelId via =
            via_labels.empty() ? e.parent_edge_label : via_labels[ci];
        if (!Feasible(e, gv, via)) continue;
      }
      if (!Place(depth, gv)) return false;
    }
    return true;
  }

  const Graph& q_;
  const Graph& g_;
  const std::vector<QsiEntry>& seq_;
  const MatchOptions& opts_;
  const CandidateIndex* index_;
  CostGuard guard_;
  MatchStats stats_;
  uint64_t found_ = 0;
  Embedding map_;
  std::vector<uint8_t> used_;
  std::vector<uint64_t> qnlf_;  // empty when index_ == nullptr
  std::vector<VertexId> spill_buf_;  // prefix scratch for Offer()
  // Multiway extension kernel (match/intersect.hpp); per-depth scratch so
  // deeper extensions never clobber an outer survivor span.
  bool multiway_ = false;
  SimdLevel simd_ = SimdLevel::kScalar;
  std::vector<MultiwayScratch> mw_;
};

}  // namespace

Status QuickSiMatcher::Prepare(const Graph& data) {
  data_ = &data;
  data.EnsureLabelIndex();
  PrepareCandidateIndex(data);
  label_freq_.assign(data.LabelUniverseUpperBound(), 0);
  for (VertexId v = 0; v < data.num_vertices(); ++v) {
    ++label_freq_[data.label(v)];
  }
  edge_label_freq_.clear();
  for (VertexId v = 0; v < data.num_vertices(); ++v) {
    auto adj = data.neighbors(v);
    auto elabels = data.edge_labels(v);
    for (size_t i = 0; i < adj.size(); ++i) {
      if (v < adj[i]) {
        ++edge_label_freq_[EdgeKey(data.label(v), data.label(adj[i]),
                                   elabels[i])];
      }
    }
  }
  return Status::OK();
}

uint64_t QuickSiMatcher::VertexWeight(LabelId l) const {
  return l < label_freq_.size() ? label_freq_[l] : 0;
}

uint64_t QuickSiMatcher::EdgeWeight(LabelId a, LabelId b,
                                    LabelId edge_label) const {
  auto it = edge_label_freq_.find(EdgeKey(a, b, edge_label));
  return it == edge_label_freq_.end() ? 0 : it->second;
}

std::vector<QsiEntry> QuickSiMatcher::CompileSequence(
    const Graph& query) const {
  const uint32_t n = query.num_vertices();
  std::vector<QsiEntry> seq;
  if (n == 0) return seq;
  seq.reserve(n);
  std::vector<uint8_t> in_tree(n, 0);
  uint32_t placed = 0;

  // Counts a candidate's back edges into the tree (excluding the parent):
  // the original prefers insertions that densify the spanning tree.
  auto back_edge_count = [&](VertexId v, VertexId parent) {
    uint32_t c = 0;
    for (VertexId w : query.neighbors(v)) {
      if (in_tree[w] && w != parent) ++c;
    }
    return c;
  };

  auto add_root = [&]() {
    // Rarest label first; ties by smaller id.
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      if (best == kInvalidVertex ||
          VertexWeight(query.label(v)) < VertexWeight(query.label(best))) {
        best = v;
      }
    }
    QsiEntry e;
    e.vertex = best;
    seq.push_back(e);
    in_tree[best] = 1;
    ++placed;
  };

  add_root();
  while (placed < n) {
    // Prim step: cheapest frontier edge; ties prefer more back edges, then
    // smaller child id, then smaller parent id.
    VertexId best_child = kInvalidVertex, best_parent = kInvalidVertex;
    uint64_t best_w = 0;
    uint32_t best_back = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (!in_tree[u]) continue;
      auto uadj = query.neighbors(u);
      auto uel = query.edge_labels(u);
      for (size_t ei = 0; ei < uadj.size(); ++ei) {
        const VertexId v = uadj[ei];
        if (in_tree[v]) continue;
        const uint64_t w =
            EdgeWeight(query.label(u), query.label(v), uel[ei]);
        const uint32_t back = back_edge_count(v, u);
        bool better = false;
        if (best_child == kInvalidVertex) {
          better = true;
        } else if (w != best_w) {
          better = w < best_w;
        } else if (back != best_back) {
          better = back > best_back;
        } else if (v != best_child) {
          better = v < best_child;
        } else {
          better = u < best_parent;
        }
        if (better) {
          best_child = v;
          best_parent = u;
          best_w = w;
          best_back = back;
        }
      }
    }
    if (best_child == kInvalidVertex) {
      // Disconnected query: open the next tree in the forest.
      add_root();
      continue;
    }
    QsiEntry e;
    e.vertex = best_child;
    e.parent = best_parent;
    e.parent_edge_label = query.EdgeLabel(best_child, best_parent);
    {
      auto adj = query.neighbors(best_child);
      auto elabels = query.edge_labels(best_child);
      for (size_t i = 0; i < adj.size(); ++i) {
        if (in_tree[adj[i]] && adj[i] != best_parent) {
          e.back_edges.push_back(adj[i]);
          e.back_edge_labels.push_back(elabels[i]);
        }
      }
    }
    seq.push_back(e);
    in_tree[best_child] = 1;
    ++placed;
  }
  return seq;
}

MatchResult QuickSiMatcher::Match(const Graph& query,
                                  const MatchOptions& opts) const {
  const auto seq = CompileSequence(query);
  QsiSearch search(query, *data_, seq, opts, candidate_index());
  MatchResult r = search.Run();
  NoteMatch(opts, r.stats);
  return r;
}

}  // namespace psi

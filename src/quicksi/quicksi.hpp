// QuickSI (Shang, Zhang, Lin, Yu — PVLDB 2008), as described in paper
// §3.1.2: vertices with infrequent labels and infrequent adjacent edge
// labels get priority. The per-graph index precomputes label and
// edge-label-pair frequencies ("inner support"); each query is compiled
// into a rooted minimum spanning tree whose insertion order — the
// QI-sequence — fixes the matching order. Ties during MST construction
// prefer edges that close more back-edges (densifying the tree, as in the
// original) and finally fall back to vertex ids, which is what makes
// QuickSI sensitive to query rewritings.

#ifndef PSI_QUICKSI_QUICKSI_HPP_
#define PSI_QUICKSI_QUICKSI_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "match/matcher.hpp"

namespace psi {

/// One entry of the QI-sequence: which query vertex to place next, through
/// which tree edge, and which back-edges must hold at placement time.
struct QsiEntry {
  VertexId vertex = kInvalidVertex;
  /// Tree parent (already placed); kInvalidVertex for (forest) roots.
  VertexId parent = kInvalidVertex;
  /// Label required on the (vertex, parent) edge.
  LabelId parent_edge_label = 0;
  /// Already-placed non-parent neighbours (back edges to verify), paired
  /// with the edge labels those back edges must carry.
  std::vector<VertexId> back_edges;
  std::vector<LabelId> back_edge_labels;
};

class QuickSiMatcher : public Matcher {
 public:
  std::string_view name() const override { return "QSI"; }
  Status Prepare(const Graph& data) override;
  MatchResult Match(const Graph& query,
                    const MatchOptions& opts) const override;
  const Graph* data() const override { return data_; }
  /// Honours MatchOptions root ranges (match/parallel.hpp splits here).
  bool SupportsRootSplit() const override { return true; }

  /// Exposed for tests: the QI-sequence compiled for `query` against the
  /// prepared graph's statistics.
  std::vector<QsiEntry> CompileSequence(const Graph& query) const;

 private:
  uint64_t VertexWeight(LabelId l) const;
  uint64_t EdgeWeight(LabelId a, LabelId b, LabelId edge_label) const;

  const Graph* data_ = nullptr;
  std::vector<uint64_t> label_freq_;
  /// Frequency of edges keyed by unordered endpoint-label pair.
  std::unordered_map<uint64_t, uint64_t> edge_label_freq_;
};

}  // namespace psi

#endif  // PSI_QUICKSI_QUICKSI_HPP_

#include "rewrite/rewrite_cache.hpp"

#include "core/fnv.hpp"
#include "fault/failpoint.hpp"

namespace psi {

uint64_t QueryFingerprint(const Graph& query) {
  uint64_t h = kFnv1aOffset;
  Fnv1aMix(query.num_vertices(), &h);
  Fnv1aMix(query.num_edges(), &h);
  for (VertexId v = 0; v < query.num_vertices(); ++v) {
    Fnv1aMix(query.label(v), &h);
    const auto neigh = query.neighbors(v);
    const auto elabels = query.edge_labels(v);
    for (size_t i = 0; i < neigh.size(); ++i) {
      Fnv1aMix(neigh[i], &h);
      Fnv1aMix(elabels[i], &h);
    }
  }
  return h;
}

bool RewriteCache::StatsDependent(Rewriting r) {
  switch (r) {
    case Rewriting::kIlf:
    case Rewriting::kIlfInd:
    case Rewriting::kIlfDnd:
      return true;
    case Rewriting::kOriginal:
    case Rewriting::kInd:
    case Rewriting::kDnd:
    case Rewriting::kRandom:
      return false;
  }
  return true;  // unknown: be conservative, key per stats identity
}

std::shared_ptr<const RewrittenQuery> RewriteCache::Get(
    const Graph& query, Rewriting r, const LabelStats& stats,
    uint64_t random_seed) {
  return GetWithFingerprint(QueryFingerprint(query), query, r, stats,
                            random_seed);
}

std::shared_ptr<const RewrittenQuery> RewriteCache::GetWithFingerprint(
    uint64_t query_fp, const Graph& query, Rewriting r,
    const LabelStats& stats, uint64_t random_seed) {
  Key key;
  key.query_fp = query_fp;
  key.stats_id = StatsDependent(r) ? stats.identity() : 0;
  key.seed = r == Rewriting::kRandom ? random_seed : 0;
  key.rewriting = r;
  // Failpoint: treat the lookup as a miss and recompute. Rewriting is a
  // pure function of the key, so a forced miss can only cost time — the
  // recompute installs (or re-finds) the identical entry.
  const bool forced_miss =
      PSI_FAULT_POINT("rewrite.lookup") == FaultKind::kMiss;
  if (!forced_miss) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second.num_vertices == query.num_vertices() &&
        it->second.num_edges == query.num_edges()) {
      ++hits_;
      return it->second.rewritten;
    }
  }
  // Compute outside the lock: rewriting is pure, and a duplicate compute
  // under contention is cheaper than serializing every rewrite.
  auto rq = RewriteQuery(query, r, stats, random_seed);
  std::shared_ptr<const RewrittenQuery> rewritten;
  if (rq.ok()) {
    rewritten =
        std::make_shared<const RewrittenQuery>(std::move(rq).value());
  } else {
    // Same defensive fallback as RunPortfolio: race the original.
    auto fallback = std::make_shared<RewrittenQuery>();
    fallback->graph = query;
    fallback->rewriting = Rewriting::kOriginal;
    rewritten = std::move(fallback);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  Entry& e = map_[key];
  if (e.rewritten == nullptr || e.num_vertices != query.num_vertices() ||
      e.num_edges != query.num_edges()) {
    // Empty slot, or a fingerprint-colliding entry for a *different*
    // query (caught by the dims guard): install our freshly computed
    // rewrite so the colliding queries thrash instead of one of them
    // racing the other's graph.
    e.rewritten = rewritten;
    e.num_vertices = query.num_vertices();
    e.num_edges = query.num_edges();
  }
  // e.rewritten is now either our compute or a concurrent thread's entry
  // that passed the dims guard (same key, same dims: our query).
  return e.rewritten;
}

std::vector<std::shared_ptr<const RewrittenQuery>> RewriteCache::GetInstances(
    const Graph& query, std::span<const Rewriting> rewritings,
    const LabelStats& stats) {
  const uint64_t fp = QueryFingerprint(query);
  std::vector<std::shared_ptr<const RewrittenQuery>> out;
  out.reserve(rewritings.size());
  for (Rewriting r : rewritings) {
    out.push_back(GetWithFingerprint(fp, query, r, stats, /*random_seed=*/0));
  }
  return out;
}

RewriteCache::Stats RewriteCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

size_t RewriteCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void RewriteCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
}

}  // namespace psi

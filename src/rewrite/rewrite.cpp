#include "rewrite/rewrite.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <random>

#include "core/graph_algos.hpp"

namespace psi {

std::string_view ToString(Rewriting r) {
  switch (r) {
    case Rewriting::kOriginal: return "Orig";
    case Rewriting::kIlf: return "ILF";
    case Rewriting::kInd: return "IND";
    case Rewriting::kDnd: return "DND";
    case Rewriting::kIlfInd: return "ILF+IND";
    case Rewriting::kIlfDnd: return "ILF+DND";
    case Rewriting::kRandom: return "Random";
  }
  return "?";
}

std::span<const Rewriting> AllRewritings() {
  static constexpr std::array<Rewriting, 5> kAll = {
      Rewriting::kIlf, Rewriting::kInd, Rewriting::kDnd, Rewriting::kIlfInd,
      Rewriting::kIlfDnd};
  return kAll;
}

std::vector<VertexId> RewritePermutation(const Graph& query, Rewriting r,
                                         const LabelStats& stats,
                                         uint64_t random_seed) {
  const uint32_t n = query.num_vertices();
  std::vector<VertexId> order(n);  // order[i] = old id placed at new id i
  std::iota(order.begin(), order.end(), 0);

  // Sort keys. Stable sort with the original id as the implicit final
  // tie-break, making "arbitrary" ties deterministic and reproducible.
  auto freq = [&](VertexId v) { return stats.frequency(query.label(v)); };
  auto deg = [&](VertexId v) { return query.degree(v); };

  switch (r) {
    case Rewriting::kOriginal:
      break;
    case Rewriting::kIlf:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) { return freq(a) < freq(b); });
      break;
    case Rewriting::kInd:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) { return deg(a) < deg(b); });
      break;
    case Rewriting::kDnd:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) { return deg(a) > deg(b); });
      break;
    case Rewriting::kIlfInd:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) {
                         if (freq(a) != freq(b)) return freq(a) < freq(b);
                         return deg(a) < deg(b);
                       });
      break;
    case Rewriting::kIlfDnd:
      std::stable_sort(order.begin(), order.end(),
                       [&](VertexId a, VertexId b) {
                         if (freq(a) != freq(b)) return freq(a) < freq(b);
                         return deg(a) > deg(b);
                       });
      break;
    case Rewriting::kRandom: {
      std::mt19937_64 engine(random_seed);
      std::shuffle(order.begin(), order.end(), engine);
      break;
    }
  }

  std::vector<VertexId> new_id_of(n);
  for (uint32_t pos = 0; pos < n; ++pos) new_id_of[order[pos]] = pos;
  return new_id_of;
}

Result<RewrittenQuery> RewriteQuery(const Graph& query, Rewriting r,
                                    const LabelStats& stats,
                                    uint64_t random_seed) {
  RewrittenQuery out;
  out.rewriting = r;
  out.new_id_of = RewritePermutation(query, r, stats, random_seed);
  auto g = ApplyPermutation(query, out.new_id_of);
  if (!g.ok()) return g.status();
  out.graph = std::move(g).value();
  return out;
}

Result<std::vector<RewrittenQuery>> RandomInstances(const Graph& query,
                                                    uint32_t k,
                                                    uint64_t seed) {
  std::vector<RewrittenQuery> out;
  out.reserve(k);
  LabelStats unused;
  for (uint32_t i = 0; i < k; ++i) {
    auto rq = RewriteQuery(query, Rewriting::kRandom, unused,
                           seed * 1000003 + i);
    if (!rq.ok()) return rq.status();
    out.push_back(std::move(rq).value());
  }
  return out;
}

Embedding MapEmbeddingBack(const RewrittenQuery& rq,
                           const Embedding& rewritten_embedding) {
  Embedding original(rewritten_embedding.size());
  for (VertexId old = 0; old < original.size(); ++old) {
    original[old] = rewritten_embedding[rq.new_id_of[old]];
  }
  return original;
}

}  // namespace psi

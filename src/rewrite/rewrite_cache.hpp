// Memoized query rewriting.
//
// Rewriting is cheap (tens of microseconds, bench_ablation_overhead) but
// it is pure, and the serving/FTV paths ask for the same rewriting of the
// same query many times: every surviving candidate graph of an FTV query
// races the same rewritten instances, and a served query stream repeats
// popular queries. RewriteCache memoizes RewriteQuery keyed by
//
//   (query fingerprint, rewriting, stats identity, random seed)
//
// where the stats identity is LabelStats::identity() for the ILF family —
// whose permutation depends on the stored graph's label frequencies — and
// 0 for the stats-independent rewritings (Original/IND/DND/Random), which
// are therefore shared across stored graphs and datasets. The cache never
// crosses stats identities: an ILF entry computed against one stored
// graph is invisible to lookups against another.
//
// Thread-safe; entries are returned as shared_ptr so they stay valid
// across Clear() and cache destruction while a race still uses them.

#ifndef PSI_REWRITE_REWRITE_CACHE_HPP_
#define PSI_REWRITE_REWRITE_CACHE_HPP_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/graph.hpp"
#include "core/label_stats.hpp"
#include "rewrite/rewrite.hpp"

namespace psi {

/// Structural fingerprint of a query graph (labels + edge list + edge
/// labels). Two graphs with equal fingerprints receive the same cache
/// slot; the permutations this cache stores are O(64-bit-collision)
/// unlikely to cross distinct queries, and every stored entry also
/// records (num_vertices, num_edges) as a cheap guard.
uint64_t QueryFingerprint(const Graph& query);

class RewriteCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t lookups() const { return hits + misses; }
    double hit_rate() const {
      return lookups() == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups());
    }
  };

  /// The rewriting of `query` under `r`, computed on first use and
  /// memoized. Stats-dependent rewritings (the ILF family) key on
  /// `stats.identity()`; the rest share one entry per query. Falls back
  /// to an uncached original-copy entry if RewriteQuery fails (it cannot
  /// for valid queries — same defensive posture as RunPortfolio).
  std::shared_ptr<const RewrittenQuery> Get(const Graph& query, Rewriting r,
                                            const LabelStats& stats,
                                            uint64_t random_seed = 0);

  /// Convenience for the FTV runners: one instance per rewriting, in
  /// order (a failed rewriting yields the original-copy fallback, so the
  /// result always has rewritings.size() entries). The query fingerprint
  /// is computed once for the whole batch — per-pair callers on the
  /// parallel hot path hash the query once, not once per rewriting.
  std::vector<std::shared_ptr<const RewrittenQuery>> GetInstances(
      const Graph& query, std::span<const Rewriting> rewritings,
      const LabelStats& stats);

  Stats stats() const;
  size_t size() const;
  void Clear();

  /// True when `r`'s permutation consults stored-graph label statistics
  /// (the ILF family), i.e. its cache entries are per stats identity.
  static bool StatsDependent(Rewriting r);

 private:
  struct Key {
    uint64_t query_fp = 0;
    uint64_t stats_id = 0;
    uint64_t seed = 0;
    Rewriting rewriting = Rewriting::kOriginal;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.query_fp;
      h = h * 1099511628211ull ^ k.stats_id;
      h = h * 1099511628211ull ^ k.seed;
      h = h * 1099511628211ull ^ static_cast<uint64_t>(k.rewriting);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    std::shared_ptr<const RewrittenQuery> rewritten;
    // Guard against (astronomically unlikely) fingerprint collisions.
    uint32_t num_vertices = 0;
    uint64_t num_edges = 0;
  };

  std::shared_ptr<const RewrittenQuery> GetWithFingerprint(
      uint64_t query_fp, const Graph& query, Rewriting r,
      const LabelStats& stats, uint64_t random_seed);

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> map_;  // guarded by mutex_
  uint64_t hits_ = 0;                            // guarded by mutex_
  uint64_t misses_ = 0;                          // guarded by mutex_
};

}  // namespace psi

#endif  // PSI_REWRITE_REWRITE_CACHE_HPP_

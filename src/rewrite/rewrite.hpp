// Isomorphic query rewritings (paper §6).
//
// A rewriting permutes the *vertex ids* of the query — structure and labels
// are untouched, so the result is isomorphic to the original by
// construction (Definition 2). Because every matching algorithm in this
// library (faithful to the originals) breaks ordering ties by vertex id,
// the permutation steers the search order and can change the runtime by
// orders of magnitude.
//
// The five deterministic rewritings of the paper:
//   ILF      — ids ascend with stored-graph label frequency (rarest first)
//   IND      — ids ascend with query-vertex degree
//   DND      — ids descend with query-vertex degree
//   ILF+IND  — ILF, ties broken IND
//   ILF+DND  — ILF, ties broken DND
// plus kRandom (a seeded uniform permutation), used to generate the
// "isomorphic instances" of §5, and kOriginal (identity) for completeness.

#ifndef PSI_REWRITE_REWRITE_HPP_
#define PSI_REWRITE_REWRITE_HPP_

#include <span>
#include <string_view>
#include <vector>

#include "core/graph.hpp"
#include "core/label_stats.hpp"
#include "core/status.hpp"
#include "match/matcher.hpp"

namespace psi {

enum class Rewriting {
  kOriginal = 0,
  kIlf,
  kInd,
  kDnd,
  kIlfInd,
  kIlfDnd,
  kRandom,
};

std::string_view ToString(Rewriting r);

/// The five deterministic rewritings of the paper, in its listing order.
std::span<const Rewriting> AllRewritings();

/// A rewritten query plus the permutation that produced it
/// (`new_id_of[old] == new`), so embeddings can be mapped back.
struct RewrittenQuery {
  Graph graph;
  std::vector<VertexId> new_id_of;
  Rewriting rewriting = Rewriting::kOriginal;
};

/// Computes only the permutation for `r` (exposed for tests/inspection).
/// `stats` supplies stored-graph label frequencies (used by the ILF family;
/// ignored by IND/DND/random). `random_seed` only matters for kRandom.
std::vector<VertexId> RewritePermutation(const Graph& query, Rewriting r,
                                         const LabelStats& stats,
                                         uint64_t random_seed = 0);

/// Applies rewriting `r` to `query`.
Result<RewrittenQuery> RewriteQuery(const Graph& query, Rewriting r,
                                    const LabelStats& stats,
                                    uint64_t random_seed = 0);

/// Generates `k` distinct-seed random isomorphic instances of `query`
/// (the §5 experiment: "6 different rewritings per query").
Result<std::vector<RewrittenQuery>> RandomInstances(const Graph& query,
                                                    uint32_t k,
                                                    uint64_t seed);

/// Translates an embedding found for the rewritten query back to the
/// original query's vertex numbering.
Embedding MapEmbeddingBack(const RewrittenQuery& rq,
                           const Embedding& rewritten_embedding);

}  // namespace psi

#endif  // PSI_REWRITE_REWRITE_HPP_

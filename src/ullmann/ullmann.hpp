// Ullmann's algorithm (JACM 1976) — the foundational subgraph-isomorphism
// procedure the paper's related work builds on ([18]; the NFV methods'
// "vertices and edges" index family). Included as a fifth portfolio
// engine: it matches query vertices in pure ascending-id order with the
// classic candidate-matrix refinement, making it the *most* rewriting-
// sensitive engine in the library — a useful extreme for Ψ portfolios and
// for studying the paper's Observation 2.

#ifndef PSI_ULLMANN_ULLMANN_HPP_
#define PSI_ULLMANN_ULLMANN_HPP_

#include "match/matcher.hpp"

namespace psi {

/// Runs Ullmann's algorithm directly on a (query, data) pair.
MatchResult UllmannMatch(const Graph& query, const Graph& data,
                         const MatchOptions& opts);

class UllmannMatcher : public Matcher {
 public:
  std::string_view name() const override { return "ULL"; }
  Status Prepare(const Graph& data) override {
    data_ = &data;
    data.EnsureLabelIndex();
    return Status::OK();
  }
  MatchResult Match(const Graph& query,
                    const MatchOptions& opts) const override {
    return UllmannMatch(query, *data_, opts);
  }
  const Graph* data() const override { return data_; }

 private:
  const Graph* data_ = nullptr;
};

}  // namespace psi

#endif  // PSI_ULLMANN_ULLMANN_HPP_

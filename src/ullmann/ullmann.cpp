#include "ullmann/ullmann.hpp"

#include <chrono>
#include <vector>

namespace psi {

namespace {

// Classic Ullmann search: a candidate matrix M (query vertex -> feasible
// data vertices), refined at every search node, with query vertices
// assigned strictly in ascending id order.
class UllmannState {
 public:
  UllmannState(const Graph& q, const Graph& g, const MatchOptions& opts)
      : q_(q),
        g_(g),
        opts_(opts),
        guard_(opts.stop, opts.deadline, opts.guard_period, opts.stop2),
        nq_(q.num_vertices()),
        ng_(g.num_vertices()),
        map_(q.num_vertices(), kInvalidVertex),
        used_(g.num_vertices(), 0) {}

  MatchResult Run() {
    const auto start = std::chrono::steady_clock::now();
    MatchResult r;
    if (nq_ == 0) {
      r.embedding_count = 1;
      r.complete = true;
      if (opts_.sink) opts_.sink(Embedding{});
      r.elapsed = std::chrono::steady_clock::now() - start;
      return r;
    }
    if (BuildInitialMatrix()) {
      Recurse(0, matrix_);
    }
    r.embedding_count = found_;
    r.complete = !guard_.interrupted();
    r.timed_out = guard_.state() == Interrupt::kDeadline;
    r.cancelled = guard_.state() == Interrupt::kCancelled;
    r.stats = stats_;
    r.elapsed = std::chrono::steady_clock::now() - start;
    return r;
  }

 private:
  using Matrix = std::vector<uint8_t>;  // nq_ x ng_, row-major

  // M[u][v] = 1 iff labels agree and deg(v) >= deg(u) — Ullmann's
  // original seeding condition.
  bool BuildInitialMatrix() {
    matrix_.assign(static_cast<size_t>(nq_) * ng_, 0);
    for (VertexId u = 0; u < nq_; ++u) {
      bool any = false;
      for (VertexId v : g_.VerticesWithLabel(q_.label(u))) {
        if (g_.degree(v) >= q_.degree(u)) {
          matrix_[static_cast<size_t>(u) * ng_ + v] = 1;
          any = true;
        }
      }
      if (!any) return false;
    }
    return Refine(&matrix_);
  }

  // Ullmann refinement to fixpoint: candidate v for u survives only if
  // every neighbour u' of u still has some candidate among v's
  // neighbours (through an equally labelled edge). Returns false when a
  // row empties.
  bool Refine(Matrix* m) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId u = 0; u < nq_; ++u) {
        auto qadj = q_.neighbors(u);
        auto qel = q_.edge_labels(u);
        bool row_has_candidate = false;
        for (VertexId v = 0; v < ng_; ++v) {
          if (!(*m)[static_cast<size_t>(u) * ng_ + v]) continue;
          if (guard_.Check() != Interrupt::kNone) return false;
          bool ok = true;
          for (size_t i = 0; i < qadj.size() && ok; ++i) {
            const VertexId uprime = qadj[i];
            bool supported = false;
            auto gadj = g_.neighbors(v);
            auto gel = g_.edge_labels(v);
            for (size_t j = 0; j < gadj.size(); ++j) {
              if (gel[j] == qel[i] &&
                  (*m)[static_cast<size_t>(uprime) * ng_ + gadj[j]]) {
                supported = true;
                break;
              }
            }
            ok = supported;
          }
          if (!ok) {
            (*m)[static_cast<size_t>(u) * ng_ + v] = 0;
            changed = true;
          } else {
            row_has_candidate = true;
          }
        }
        if (!row_has_candidate) return false;
      }
    }
    return true;
  }

  bool Recurse(VertexId depth, const Matrix& m) {
    if (depth == nq_) {
      ++found_;
      if (opts_.sink && !opts_.sink(map_)) return false;
      return found_ < opts_.max_embeddings;
    }
    ++stats_.recursion_nodes;
    auto qadj = q_.neighbors(depth);
    auto qel = q_.edge_labels(depth);
    for (VertexId v = 0; v < ng_; ++v) {
      if (guard_.Check() != Interrupt::kNone) return false;
      if (used_[v] || !m[static_cast<size_t>(depth) * ng_ + v]) continue;
      ++stats_.candidates_tried;
      // Verify edges to already-assigned query vertices.
      bool edges_ok = true;
      for (size_t i = 0; i < qadj.size(); ++i) {
        if (qadj[i] < depth &&
            !g_.HasEdgeWithLabel(v, map_[qadj[i]], qel[i])) {
          edges_ok = false;
          break;
        }
      }
      if (!edges_ok) continue;
      // Descend with a refined copy of the matrix, row `depth` pinned
      // to v (the textbook Ullmann step).
      Matrix child = m;
      for (VertexId w = 0; w < ng_; ++w) {
        child[static_cast<size_t>(depth) * ng_ + w] = (w == v);
      }
      map_[depth] = v;
      used_[v] = 1;
      bool keep_going = true;
      if (Refine(&child)) {
        keep_going = Recurse(depth + 1, child);
      } else if (guard_.interrupted()) {
        keep_going = false;
      }
      used_[v] = 0;
      map_[depth] = kInvalidVertex;
      if (!keep_going) return false;
    }
    return true;
  }

  const Graph& q_;
  const Graph& g_;
  const MatchOptions& opts_;
  CostGuard guard_;
  MatchStats stats_;
  uint64_t found_ = 0;
  const uint32_t nq_;
  const uint32_t ng_;
  Matrix matrix_;
  Embedding map_;
  std::vector<uint8_t> used_;
};

}  // namespace

MatchResult UllmannMatch(const Graph& query, const Graph& data,
                         const MatchOptions& opts) {
  UllmannState state(query, data, opts);
  return state.Run();
}

}  // namespace psi

// FTV (decision-problem) pipeline on a graph dataset: build a Grapes
// index, filter, then verify candidates — first plain, then with the
// Ψ-framework racing rewritings per candidate graph. Also saves/loads the
// dataset through the GFU format to show the I/O round trip.
//
//   $ ./examples/ftv_pipeline

#include <iostream>
#include <sstream>

#include "core/label_stats.hpp"
#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "grapes/grapes.hpp"
#include "io/graph_io.hpp"
#include "psi/racer.hpp"
#include "rewrite/rewrite.hpp"

int main() {
  using namespace psi;

  // A transaction-style dataset: many small-ish labelled graphs.
  gen::GraphGenLikeOptions opt;
  opt.num_graphs = 40;
  opt.avg_nodes = 120;
  opt.density = 0.08;
  opt.num_labels = 12;
  opt.seed = 11;
  GraphDataset dataset = gen::GraphGenLike(opt);
  std::cout << "dataset: " << dataset.size() << " graphs\n";

  // Round-trip through GFU (the format the original Grapes consumes).
  io::LabelDict dict;
  for (uint32_t l = 0; l < opt.num_labels; ++l) {
    dict.Intern("L" + std::to_string(l));
  }
  std::stringstream file;
  if (auto s = io::WriteGfu(dataset, dict, file); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  io::LabelDict dict2;
  auto loaded = io::ReadGfu(file, &dict2);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "GFU round trip: " << loaded->size() << " graphs re-read\n";

  // Index once; the 10-minute-style cap never applies to indexing.
  GrapesOptions gopt;
  gopt.num_threads = 4;
  GrapesIndex index(gopt);
  if (auto s = index.Build(dataset); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // A workload of 6-edge patterns drawn from the dataset itself.
  auto workload = gen::GenerateWorkload(dataset, 5, 6, 77);
  if (!workload.ok()) return 1;
  const LabelStats stats = LabelStats::FromGraphs(dataset.graphs());

  for (const auto& q : *workload) {
    const auto candidates = index.Filter(q.graph);
    size_t contained = 0;

    // Ψ verification: per candidate graph, race ILF/IND/DND rewritings;
    // the first finisher answers for that graph.
    const Rewriting rewritings[] = {Rewriting::kIlf, Rewriting::kInd,
                                    Rewriting::kDnd};
    for (const auto& cand : candidates) {
      std::vector<RewrittenQuery> instances;
      for (Rewriting r : rewritings) {
        auto rq = RewriteQuery(q.graph, r, stats);
        if (rq.ok()) instances.push_back(std::move(rq).value());
      }
      std::vector<RaceVariant> variants;
      for (const auto& inst : instances) {
        variants.push_back(RaceVariant{
            std::string(ToString(inst.rewriting)),
            [&index, &inst, &cand](const MatchOptions& mo) {
              return index.VerifyCandidate(inst.graph, cand, mo);
            }});
      }
      RaceOptions ro;
      ro.budget = std::chrono::seconds(5);
      ro.max_embeddings = 1;
      auto outcome = Race(variants, ro);
      if (outcome.completed() && outcome.result.found()) ++contained;
    }
    std::cout << "query(source graph " << q.source_graph << "): "
              << candidates.size() << "/" << dataset.size()
              << " graphs past the filter, " << contained
              << " contain the pattern\n";
  }
  return 0;
}

// psi_cli — command-line subgraph querying over dataset files.
//
// NFV (matching against one large stored graph, first graph of the file):
//   psi_cli nfv data.tve queries.tve [--algos=gql,spa,qsi,vf2]
//           [--rewritings=orig,ilf,ind,dnd,ilf+ind,ilf+dnd]
//           [--cap-ms=250] [--max-embeddings=1000] [--staged=1]
//           [--explain]
//
// FTV (decision against every graph of a dataset):
//   psi_cli ftv dataset.gfu queries.gfu [--threads=4]
//           [--rewritings=ilf,ind,dnd] [--cap-ms=250] [--explain]
//
// Both modes run the requested (algorithm x rewriting) portfolio per
// query through the query-planning pipeline (src/plan/) — the
// Ψ-framework — and report per-query winners and timings. `--staged=1`
// enables probe-then-escalate plans once the engine's selector is warm
// (or set PSI_PLAN_STAGED=1); `--explain` prints each query's chosen
// plan (variant order, stage budgets), per-race matching-kernel counters
// (candidates tried, NLF rejects, bitset edge checks, label-slice sizes
// — match/candidate_index.hpp), the rewrite-cache hit counters, and the
// aggregate kernel[...] gauges. Files: .tve / .gfu as documented in
// io/graph_io.hpp.

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/label_stats.hpp"
#include "match/candidate_index.hpp"
#include "metrics/metrics.hpp"
#include "ggsx/ggsx.hpp"
#include "grapes/grapes.hpp"
#include "graphql/graphql.hpp"
#include "io/graph_io.hpp"
#include "plan/plan.hpp"
#include "plan/planner.hpp"
#include "psi/engine.hpp"
#include "quicksi/quicksi.hpp"
#include "rewrite/rewrite_cache.hpp"
#include "workload/runner.hpp"
#include "spath/spath.hpp"
#include "ullmann/ullmann.hpp"
#include "vf2/vf2.hpp"

namespace {

using namespace psi;

// --key=value option lookup.
std::string Opt(int argc, char** argv, const std::string& key,
                const std::string& def) {
  const std::string prefix = "--" + key + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return def;
}

// Bare --key flag presence.
bool Flag(int argc, char** argv, const std::string& key) {
  const std::string flag = "--" + key;
  for (int i = 0; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Result<GraphDataset> Load(const std::string& path, io::LabelDict* dict) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".gfu") {
    return io::ReadGfuFile(path, dict);
  }
  return io::ReadTveFile(path, dict);
}

// Per-race kernel-counter line for --explain: the candidate-index effort
// of every contender that actually ran (match/candidate_index.hpp).
std::string FormatRaceKernelCounters(const RaceResult& r) {
  MatchStats total;
  for (const auto& w : r.workers) total.Add(w.result.stats);
  std::string out = "  kernel: tried=" + std::to_string(total.candidates_tried);
  out += " nlf_rejects=" + std::to_string(total.nlf_rejects);
  out += " bitset_checks=" + std::to_string(total.bitset_edge_checks);
  out += " slice_cands=" + std::to_string(total.slice_candidates);
  return out;
}

Result<std::vector<Rewriting>> ParseRewritings(const std::string& spec) {
  std::vector<Rewriting> out;
  for (const std::string& name : Split(spec)) {
    if (name == "orig") {
      out.push_back(Rewriting::kOriginal);
    } else if (name == "ilf") {
      out.push_back(Rewriting::kIlf);
    } else if (name == "ind") {
      out.push_back(Rewriting::kInd);
    } else if (name == "dnd") {
      out.push_back(Rewriting::kDnd);
    } else if (name == "ilf+ind") {
      out.push_back(Rewriting::kIlfInd);
    } else if (name == "ilf+dnd") {
      out.push_back(Rewriting::kIlfDnd);
    } else {
      return Status::InvalidArgument("unknown rewriting '" + name + "'");
    }
  }
  if (out.empty()) return Status::InvalidArgument("no rewritings given");
  return out;
}

int RunNfv(int argc, char** argv) {
  io::LabelDict dict;
  auto data = Load(argv[2], &dict);
  if (!data.ok() || data->empty()) {
    std::cerr << "cannot load stored graph: " << data.status().ToString()
              << "\n";
    return 1;
  }
  auto queries = Load(argv[3], &dict);
  if (!queries.ok()) {
    std::cerr << "cannot load queries: " << queries.status().ToString()
              << "\n";
    return 1;
  }
  const Graph& g = data->graph(0);
  std::cerr << "stored graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges; " << queries->size()
            << " queries\n";

  PsiEngineOptions options;
  options.budget = std::chrono::milliseconds(
      std::stoll(Opt(argc, argv, "cap-ms",
                     std::to_string(CapMillis()))));
  options.max_embeddings = static_cast<uint64_t>(
      std::stoll(Opt(argc, argv, "max-embeddings", "1000")));
  auto rewritings =
      ParseRewritings(Opt(argc, argv, "rewritings", "orig,dnd"));
  if (!rewritings.ok()) {
    std::cerr << rewritings.status().ToString() << "\n";
    return 1;
  }
  options.rewritings = *rewritings;

  const std::string staged = Opt(argc, argv, "staged", "");
  if (!staged.empty()) options.staged = staged != "0";
  const bool explain = Flag(argc, argv, "explain");

  PsiEngine engine(options);
  for (const std::string& a :
       Split(Opt(argc, argv, "algos", "gql,spa"))) {
    if (a == "gql") {
      engine.AddMatcher(std::make_unique<GraphQlMatcher>());
    } else if (a == "spa") {
      engine.AddMatcher(std::make_unique<SPathMatcher>());
    } else if (a == "qsi") {
      engine.AddMatcher(std::make_unique<QuickSiMatcher>());
    } else if (a == "vf2") {
      engine.AddMatcher(std::make_unique<Vf2Matcher>());
    } else if (a == "ull") {
      engine.AddMatcher(std::make_unique<UllmannMatcher>());
    } else {
      std::cerr << "unknown algorithm '" << a << "'\n";
      return 1;
    }
  }
  if (auto s = engine.Prepare(g); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cerr << "portfolio: " << engine.portfolio().entries.size()
            << " contenders"
            << (options.staged ? ", staged plans once warm" : "") << "\n";

  std::cout << "query\tembeddings\twinner\tms\n";
  for (size_t i = 0; i < queries->size(); ++i) {
    if (explain) {
      std::cerr << "query " << i << " "
                << FormatPlan(engine.ExplainPlan(queries->graph(i)),
                              engine.portfolio());
    }
    auto r = engine.Run(queries->graph(i), options.max_embeddings);
    if (explain) std::cerr << FormatRaceKernelCounters(r) << "\n";
    if (r.completed()) {
      std::cout << i << "\t" << r.result.embedding_count << "\t"
                << r.workers[r.winner].name << "\t" << r.wall_ms() << "\n";
    } else {
      std::cout << i << "\tKILLED\t-\t-\n";
    }
  }
  if (explain) {
    const RewriteCache::Stats cs = engine.rewrite_cache_stats();
    std::cerr << "rewrite cache: " << cs.hits << " hits / " << cs.lookups()
              << " lookups, " << engine.observed_races()
              << " race outcomes learned\n";
    const std::string kernel = FormatKernelGauges(engine.pool_gauges());
    if (!kernel.empty()) std::cerr << kernel << "\n";
  }
  return 0;
}

int RunFtv(int argc, char** argv) {
  io::LabelDict dict;
  auto dataset = Load(argv[2], &dict);
  if (!dataset.ok()) {
    std::cerr << "cannot load dataset: " << dataset.status().ToString()
              << "\n";
    return 1;
  }
  auto queries = Load(argv[3], &dict);
  if (!queries.ok()) {
    std::cerr << "cannot load queries: " << queries.status().ToString()
              << "\n";
    return 1;
  }
  GrapesOptions gopts;
  gopts.num_threads = static_cast<uint32_t>(
      std::stoul(Opt(argc, argv, "threads", "4")));
  GrapesIndex index(gopts);
  if (auto s = index.Build(*dataset); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  auto rewritings =
      ParseRewritings(Opt(argc, argv, "rewritings", "ilf,ind,dnd"));
  if (!rewritings.ok()) {
    std::cerr << rewritings.status().ToString() << "\n";
    return 1;
  }
  const double cap_ms = std::stod(
      Opt(argc, argv, "cap-ms", std::to_string(CapMillis())));
  const bool explain = Flag(argc, argv, "explain");
  const LabelStats stats = LabelStats::FromGraphs(dataset->graphs());

  // Verification plans over the rewriting-only universe; the rewrite
  // cache memoizes each query's instances across its candidate graphs
  // (the pre-plan CLI rewrote per candidate).
  const Portfolio universe = MakeFtvVerificationPortfolio(*rewritings);
  QueryPlannerOptions po = QueryPlannerOptions::FromEnv();  // PSI_PLAN_*
  po.budget =
      std::chrono::nanoseconds(static_cast<int64_t>(cap_ms * 1e6));
  QueryPlanner planner;
  planner.Configure(&universe, &stats, po);
  RewriteCache cache;

  std::cout << "query\tcandidates\tanswers\n";
  for (size_t qi = 0; qi < queries->size(); ++qi) {
    const Graph& q = queries->graph(qi);
    const QueryPlan plan = planner.Plan(q);
    if (explain) {
      std::cerr << "query " << qi << " " << FormatPlan(plan, universe);
    }
    size_t answers = 0;
    auto candidates = index.Filter(q);
    for (const auto& cand : candidates) {
      const auto instances = cache.GetInstances(q, *rewritings, stats);
      std::vector<RaceVariant> variants;
      for (size_t vi = 0; vi < instances.size(); ++vi) {
        variants.push_back(RaceVariant{
            std::string(ToString((*rewritings)[vi])),
            [&index, inst = instances[vi], &cand](const MatchOptions& mo) {
              return index.VerifyCandidate(inst->graph, cand, mo);
            }});
      }
      RaceOptions ro;
      ro.budget = po.budget;
      ro.max_embeddings = 1;
      const PlanResult outcome = ExecutePlan(plan, variants, ro);
      if (explain) {
        std::cerr << "  g" << cand.graph_id
                  << FormatRaceKernelCounters(outcome.race) << "\n";
      }
      if (outcome.race.completed() && outcome.race.result.found()) {
        ++answers;
      }
      if (outcome.race.completed()) {
        planner.Observe(plan.features,
                        static_cast<size_t>(outcome.race.winner));
      }
    }
    std::cout << qi << "\t" << candidates.size() << "\t" << answers << "\n";
  }
  if (explain) {
    const RewriteCache::Stats cs = cache.stats();
    std::cerr << "rewrite cache: " << cs.hits << " hits / " << cs.lookups()
              << " lookups (" << cs.misses << " rewrites computed)\n";
    PoolGauges g;
    index.kernel_stats().AddTo(&g);
    const std::string kernel = FormatKernelGauges(g);
    if (!kernel.empty()) std::cerr << kernel << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: psi_cli nfv <data.tve|gfu> <queries.tve|gfu> "
                 "[--algos=...] [--rewritings=...] [--cap-ms=N] "
                 "[--staged=1] [--explain]\n"
                 "       psi_cli ftv <dataset.gfu|tve> <queries.gfu|tve> "
                 "[--threads=N] [--rewritings=...] [--cap-ms=N] "
                 "[--explain]\n";
    return 2;
  }
  if (std::strcmp(argv[1], "nfv") == 0) return RunNfv(argc, argv);
  if (std::strcmp(argv[1], "ftv") == 0) return RunFtv(argc, argv);
  std::cerr << "unknown mode '" << argv[1] << "'\n";
  return 2;
}

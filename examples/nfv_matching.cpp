// NFV (matching-problem) walkthrough on a single large stored graph:
// enumerate embeddings with all four engines, compare their search effort,
// and map a rewritten query's embedding back to the original numbering.
//
//   $ ./examples/nfv_matching

#include <iostream>

#include "core/label_stats.hpp"
#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "graphql/graphql.hpp"
#include "quicksi/quicksi.hpp"
#include "rewrite/rewrite.hpp"
#include "spath/spath.hpp"
#include "vf2/vf2.hpp"

int main() {
  using namespace psi;

  const Graph data = gen::HumanLike(/*scale=*/4, /*seed=*/3);
  std::cout << "stored graph: " << data.num_vertices() << " vertices, "
            << data.num_edges() << " edges (human-like density)\n";

  auto query = gen::ExtractQuery(data, 10, /*num_edges=*/7, 123);
  if (!query.ok()) return 1;

  Vf2Matcher vf2;
  QuickSiMatcher qsi;
  GraphQlMatcher gql;
  SPathMatcher spa;
  Matcher* engines[] = {&vf2, &qsi, &gql, &spa};
  for (Matcher* m : engines) {
    if (auto s = m->Prepare(data); !s.ok()) {
      std::cerr << m->name() << ": " << s.ToString() << "\n";
      return 1;
    }
  }

  // All engines must agree on the embedding count (capped at 1000, as the
  // paper caps its NFV experiments).
  std::cout << "\nengine  embeddings  time(ms)  search-tree nodes\n";
  for (Matcher* m : engines) {
    MatchOptions opts;
    opts.max_embeddings = 1000;
    auto r = m->Match(*query, opts);
    std::cout << m->name() << "     " << r.embedding_count << "        "
              << r.elapsed_ms() << "    " << r.stats.recursion_nodes
              << "\n";
  }

  // Rewriting + mapping back: embeddings found for the rewritten instance
  // translate to valid embeddings of the original query.
  const LabelStats stats = LabelStats::FromGraph(data);
  auto rq = RewriteQuery(*query, Rewriting::kIlfDnd, stats);
  if (!rq.ok()) return 1;
  MatchOptions one;
  one.max_embeddings = 1;
  Embedding rewritten_embedding;
  one.sink = [&](const Embedding& e) {
    rewritten_embedding = e;
    return false;
  };
  auto r = gql.Match(rq->graph, one);
  if (r.found()) {
    const Embedding original = MapEmbeddingBack(*rq, rewritten_embedding);
    std::cout << "\nILF+DND instance matched; mapped back to original "
                 "numbering: valid="
              << (IsValidEmbedding(*query, data, original) ? "yes" : "NO")
              << "\n";
  }
  return 0;
}

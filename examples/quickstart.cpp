// Quickstart: build a tiny labelled graph, extract a pattern, and answer
// a subgraph query three ways — single matcher, rewritten query, and the
// Ψ-framework racing a whole portfolio.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/graph.hpp"
#include "core/label_stats.hpp"
#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "graphql/graphql.hpp"
#include "psi/portfolio.hpp"
#include "spath/spath.hpp"

int main() {
  using namespace psi;

  // 1. A stored graph. Any vertex-labelled undirected graph works; here a
  //    synthetic protein-interaction-style graph stands in for your data.
  const Graph data = gen::YeastLike(/*scale=*/4, /*seed=*/7);
  std::cout << "stored graph: " << data.num_vertices() << " vertices, "
            << data.num_edges() << " edges, " << data.NumDistinctLabels()
            << " labels\n";

  // 2. A pattern. Real applications parse one (see io/graph_io.hpp);
  //    here we extract a 8-edge pattern from the data so a match exists.
  auto query = gen::ExtractQuery(data, /*seed_vertex=*/0, /*num_edges=*/8,
                                 /*rng_seed=*/42);
  if (!query.ok()) {
    std::cerr << "query extraction failed: " << query.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "pattern: " << query->num_vertices() << " vertices, "
            << query->num_edges() << " edges\n\n";

  // 3. Prepare matchers once per stored graph (index build).
  GraphQlMatcher gql;
  SPathMatcher spa;
  if (!gql.Prepare(data).ok() || !spa.Prepare(data).ok()) return 1;

  // 4a. Plain matching: find up to 1000 embeddings with GraphQL.
  MatchOptions opts;
  opts.max_embeddings = 1000;
  auto direct = gql.Match(*query, opts);
  std::cout << "GraphQL alone: " << direct.embedding_count
            << " embeddings in " << direct.elapsed_ms() << " ms\n";

  // 4b. Same query under an ILF rewriting (rarest label first).
  const LabelStats stats = LabelStats::FromGraph(data);
  auto rewritten = RewriteQuery(*query, Rewriting::kIlf, stats);
  if (rewritten.ok()) {
    auto r = gql.Match(rewritten->graph, opts);
    std::cout << "GraphQL + ILF rewriting: " << r.embedding_count
              << " embeddings in " << r.elapsed_ms() << " ms\n";
  }

  // 4c. The Ψ-framework: race both algorithms under original + DND.
  const Matcher* matchers[] = {&gql, &spa};
  const Rewriting rewritings[] = {Rewriting::kOriginal, Rewriting::kDnd};
  const Portfolio portfolio =
      MakeMultiAlgorithmPortfolio(matchers, rewritings);
  RaceOptions race;
  race.budget = std::chrono::seconds(10);
  race.max_embeddings = 1000;
  race.mode = RaceMode::kThreads;
  auto outcome = RunPortfolio(portfolio, *query, stats, race);
  if (outcome.completed()) {
    std::cout << portfolio.name << ": winner="
              << outcome.workers[outcome.winner].name << " with "
              << outcome.result.embedding_count << " embeddings in "
              << outcome.wall_ms() << " ms\n";
  } else {
    std::cout << portfolio.name << ": all contenders hit the cap\n";
  }
  return 0;
}

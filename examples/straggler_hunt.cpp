// Straggler hunt: the paper's core observations in one runnable story.
// Generates a workload over a yeast-like graph, finds the straggler
// queries of GraphQL, and shows that (i) an isomorphic rewriting or
// (ii) another algorithm (sPath) — i.e. exactly what the Ψ-framework
// races — rescues them, and (iii) the deployment-side third rescue:
// splitting the straggler's own search frontier across the executor
// pool (MatchParallel), which attacks the tail even when every variant
// of the race is slow.
//
//   $ ./examples/straggler_hunt

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/label_stats.hpp"
#include "exec/executor.hpp"
#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "graphql/graphql.hpp"
#include "match/parallel.hpp"
#include "psi/portfolio.hpp"
#include "spath/spath.hpp"

int main() {
  using namespace psi;

  const Graph data = gen::YeastLike(1, 99);
  const LabelStats stats = LabelStats::FromGraph(data);
  GraphQlMatcher gql;
  SPathMatcher spa;
  if (!gql.Prepare(data).ok() || !spa.Prepare(data).ok()) return 1;

  auto workload = gen::GenerateWorkload(data, 60, 24, 555);
  if (!workload.ok()) return 1;

  // Run everything under a small cap; collect per-query times.
  const double cap_ms = 100.0;
  MatchOptions opts;
  opts.max_embeddings = 1000;
  struct Row {
    size_t index;
    double ms;
    bool killed;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < workload->size(); ++i) {
    MatchOptions o = opts;
    o.deadline = Deadline::AfterMillis(static_cast<int64_t>(cap_ms));
    auto r = gql.Match((*workload)[i].graph, o);
    rows.push_back({i, r.complete ? r.elapsed_ms() : cap_ms, !r.complete});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ms > b.ms; });

  const double median = rows[rows.size() / 2].ms;
  std::cout << "GraphQL on " << workload->size()
            << " 24-edge queries (cap " << cap_ms
            << "ms): median=" << median << "ms, slowest=" << rows[0].ms
            << "ms\n\nTop stragglers and their rescues:\n";

  const Matcher* matchers[] = {&gql, &spa};
  const Rewriting rewritings[] = {Rewriting::kOriginal, Rewriting::kIlf,
                                  Rewriting::kDnd};
  const Portfolio portfolio =
      MakeMultiAlgorithmPortfolio(matchers, rewritings);

  Executor pool;  // for the intra-query split rescue
  int shown = 0;
  for (const Row& row : rows) {
    if (shown >= 5) break;
    if (row.ms < 10.0 * median) continue;  // only true stragglers
    ++shown;
    const Graph& q = (*workload)[row.index].graph;
    RaceOptions ro;
    ro.budget = std::chrono::milliseconds(static_cast<int64_t>(cap_ms));
    ro.max_embeddings = 1000;
    ro.mode = RaceMode::kSequential;  // report every contender
    auto race = RunPortfolio(portfolio, q, stats, ro);
    std::cout << "  query#" << row.index << "  GQL-Orig: "
              << (row.killed ? "KILLED" : std::to_string(row.ms) + "ms")
              << "  ->";
    if (race.completed()) {
      std::cout << " winner " << race.workers[race.winner].name << " in "
                << race.wall_ms() << "ms";
    } else {
      std::cout << " no contender finished";
    }
    // The third rescue: same matcher, root frontier split across the
    // pool (answers identical by MatchParallel's determinism contract;
    // the wall-clock win needs real cores — on a 1-core box this just
    // demonstrates the exactness).
    MatchOptions so;
    so.max_embeddings = 1000;
    so.deadline = Deadline::AfterMillis(static_cast<int64_t>(cap_ms));
    ParallelMatchOptions po;
    po.split = 4;
    po.executor = &pool;
    const MatchResult split = MatchParallel(gql, q, so, po);
    std::cout << "  | GQL split x4: "
              << (split.complete ? std::to_string(split.elapsed_ms()) + "ms"
                                 : "KILLED")
              << " (" << split.embedding_count << " embeddings)\n";
  }
  if (shown == 0) {
    std::cout << "  (no straggler above 10x median in this workload — "
                 "increase the workload size or query size)\n";
  }
  std::cout << "\nThis is Observation 2 + 5 of the paper: stragglers are "
               "instance- and algorithm-specific, so racing rewritings and "
               "algorithms (the Ψ-framework) removes them.\n";
  return 0;
}

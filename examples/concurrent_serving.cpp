// Concurrent serving: one PsiEngine, one persistent executor pool, many
// client threads — the deployment shape the exec subsystem exists for.
//
// Every client races the full portfolio per query on the shared pool
// (RaceMode::kPool): no per-race thread churn, and variants that lose
// while still queued are discarded without running. Compare
// examples/adaptive_engine.cpp, which shows the paper-faithful
// per-race-thread setup.
//
//   $ ./example_concurrent_serving

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "graphql/graphql.hpp"
#include "psi/engine.hpp"
#include "spath/spath.hpp"

int main() {
  using namespace psi;

  // 1. Stored graph + engine, prepared once at startup.
  const Graph data = gen::YeastLike(/*scale=*/4, /*seed=*/7);
  Executor pool;  // PSI_POOL_THREADS workers (default: all cores)

  PsiEngineOptions options;
  options.mode = RaceMode::kPool;  // deployment mode
  options.executor = &pool;
  options.budget = std::chrono::seconds(2);
  PsiEngine engine(options);
  engine.AddMatcher(std::make_unique<GraphQlMatcher>());
  engine.AddMatcher(std::make_unique<SPathMatcher>());
  if (!engine.Prepare(data).ok()) {
    std::cerr << "prepare failed\n";
    return 1;
  }
  std::cout << "engine ready: " << engine.portfolio().entries.size()
            << " variants per race, pool of " << pool.num_threads()
            << " worker(s)\n";

  // 2. A query stream: here, planted patterns standing in for client
  //    traffic.
  auto workload = gen::GenerateWorkload(data, /*count=*/64, /*num_edges=*/6,
                                        /*seed=*/20260730);
  if (!workload.ok()) {
    std::cerr << "workload generation failed\n";
    return 1;
  }

  // 3. Eight clients hammer the engine concurrently. Contains() is safe
  //    from any number of threads once Prepare() returned.
  constexpr int kClients = 8;
  std::atomic<int> matched{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < workload->size(); i += kClients) {
        auto answer = engine.Contains((*workload)[i].graph);
        if (!answer.ok()) {
          errors.fetch_add(1);
        } else if (*answer) {
          matched.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  std::cout << "served " << workload->size() << " queries from " << kClients
            << " clients: " << matched.load() << " matched, " << errors.load()
            << " errors\n";
  std::cout << FormatPoolGauges(pool.gauges()) << "\n";
  std::cout << "races observed by the learning selector: "
            << engine.observed_races() << "\n";
  return errors.load() == 0 ? 0 : 1;
}

// Adaptive engine walkthrough: PsiEngine answers a query stream while
// learning which (algorithm, rewriting) variant wins for which query
// shape. Every query runs through the query-planning pipeline
// (src/plan/): cold, the plan is the classic full race; once the
// selector is warm the planner narrows the full stage to the predicted
// top-2 *and* stages the race — the predicted winner probes alone under
// 10% of the budget and the race escalates only on a miss. This recovers
// most of the racing benefit at a fraction of the work (the paper's §9
// future-work direction, implemented in src/plan + src/select).
//
//   $ ./examples/adaptive_engine

#include <iostream>
#include <memory>

#include "gen/dataset_gen.hpp"
#include "gen/query_gen.hpp"
#include "graphql/graphql.hpp"
#include "psi/engine.hpp"
#include "quicksi/quicksi.hpp"
#include "spath/spath.hpp"

int main() {
  using namespace psi;

  const Graph data = gen::YeastLike(/*scale=*/1, /*seed=*/2024);
  std::cout << "stored graph: " << data.num_vertices() << " vertices, "
            << data.num_edges() << " edges\n";

  PsiEngineOptions options;
  options.budget = std::chrono::seconds(2);
  options.rewritings = {Rewriting::kOriginal, Rewriting::kIlf,
                        Rewriting::kDnd};
  options.portfolio_limit = 2;  // after warm-up, full stage = top-2
  options.staged = true;        // probe the predicted winner first
  options.probe_fraction = 0.1;
  options.learn = true;

  PsiEngine engine(options);
  engine.AddMatcher(std::make_unique<GraphQlMatcher>());
  engine.AddMatcher(std::make_unique<SPathMatcher>());
  engine.AddMatcher(std::make_unique<QuickSiMatcher>());
  if (auto s = engine.Prepare(data); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  std::cout << "full portfolio: " << engine.portfolio().entries.size()
            << " variants (3 engines x 3 rewritings)\n\n";

  // A mixed query stream: small dense-ish patterns and longer paths.
  std::vector<gen::Query> stream;
  for (uint32_t size : {6u, 12u, 20u}) {
    auto w = gen::GenerateWorkload(data, 8, size, 3000 + size);
    if (w.ok()) {
      for (auto& q : *w) stream.push_back(std::move(q));
    }
  }
  if (stream.empty()) return 1;

  std::cout << "cold plan for the first query:\n"
            << FormatPlan(engine.ExplainPlan(stream.front().graph),
                          engine.portfolio())
            << "\n";

  size_t answered = 0;
  double total_ms = 0.0;
  for (const auto& q : stream) {
    auto r = engine.Run(q.graph, /*max_embeddings=*/1000);
    if (r.completed()) {
      ++answered;
      total_ms += r.wall_ms();
      if (answered % 8 == 0) {
        std::cout << "after " << answered << " queries: plans "
                  << (engine.observed_races() >= 8
                          ? "staged + narrowed to top-2"
                          : "still warming up (full races)")
                  << ", last winner = " << r.workers[r.winner].name
                  << "\n";
      }
    }
  }

  std::cout << "\nwarm plan for the first query:\n"
            << FormatPlan(engine.ExplainPlan(stream.front().graph),
                          engine.portfolio());
  const RewriteCache::Stats cs = engine.rewrite_cache_stats();
  std::cout << "\nanswered " << answered << "/" << stream.size()
            << " queries, avg race latency "
            << (answered ? total_ms / answered : 0.0) << " ms, "
            << engine.observed_races() << " outcomes recorded, rewrite cache "
            << cs.hits << "/" << cs.lookups() << " hits\n";
  return 0;
}

#!/usr/bin/env python3
"""Markdown intra-repo link checker (stdlib only; used by the CI docs job).

Scans every tracked-ish .md file for [text](target) links and verifies
that relative targets exist on disk, and that #anchors point at a real
heading (GitHub slug rules, simplified). External (scheme://) and mailto
links are ignored. Exits non-zero listing every broken link.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "build-tsan", "build-asan", ".github"}
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (simplified: enough for our headings)."""
    s = re.sub(r"[*_`~]", "", heading.strip().lower())
    s = re.sub(r"[^\w\- ]", "", s, flags=re.UNICODE)
    return s.replace(" ", "-")


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def headings_of(path: str):
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slugs.add(slugify(m.group(1)))
    return slugs


def links_of(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main() -> int:
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), ".."))
    heading_cache = {}
    errors = []
    checked = 0
    for md in sorted(md_files(root)):
        for lineno, target in links_of(md):
            if re.match(r"^[a-z][a-z0-9+.\-]*:", target):  # scheme: external
                continue
            checked += 1
            target_path, _, anchor = target.partition("#")
            where = f"{os.path.relpath(md, root)}:{lineno}"
            if target_path:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), target_path))
            else:
                resolved = md  # pure-anchor link into the same file
            if not os.path.exists(resolved):
                errors.append(f"{where}: missing file: {target}")
                continue
            if anchor and resolved.endswith(".md"):
                if resolved not in heading_cache:
                    heading_cache[resolved] = headings_of(resolved)
                if slugify(anchor) not in heading_cache[resolved]:
                    errors.append(f"{where}: missing anchor: {target}")
    for e in errors:
        print(e)
    print(f"checked {checked} intra-repo links: "
          f"{'FAILED, ' + str(len(errors)) + ' broken' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
